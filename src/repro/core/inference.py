"""Environment-feature strategies for plan cost inference (Section 5).

At query optimization time, the execution environment of an online query is
unobservable: the query has not started yet.  Section 5 proves (Theorem 1)
that no model can beat M_b, the model minimizing *expected* cost over the
environment distribution, and proposes approximating the expectation with a
single *representative* environment instance e_r.

The strategies here mirror the paper's comparison (Section 7.2.5):

* :class:`HistoricalMeanEnvironment` — **LOAM's choice**: each environment
  feature is set to its empirical mean over the project's historical
  stage-level observations (≈ 0.5 normalized; IO_WAIT ≈ 0.05);
* :class:`ClusterExpectedEnvironment` — **LOAM-CE**: fits the feature
  distribution from cluster-wide samples over the past 24 h and uses its
  expected values;
* :class:`ClusterCurrentEnvironment` — **LOAM-CB**: uses the cluster-wide
  environment at the moment of optimization;
* :class:`NoLoadEnvironment` — **LOAM-NL**: no environment features at all
  (also used at training time by the NL ablation).
"""

from __future__ import annotations

import numpy as np

from repro.warehouse.cluster import Cluster, EnvironmentSample
from repro.warehouse.executor import ExecutionRecord

__all__ = [
    "EnvironmentStrategy",
    "HistoricalMeanEnvironment",
    "ClusterExpectedEnvironment",
    "ClusterCurrentEnvironment",
    "NoLoadEnvironment",
]

Features = tuple[float, float, float, float]


class EnvironmentStrategy:
    """Supplies the environment feature block for online cost inference."""

    name = "base"

    def features(self) -> Features:
        raise NotImplementedError

    def environment(self) -> EnvironmentSample:
        return EnvironmentSample.from_normalized(self.features())


class HistoricalMeanEnvironment(EnvironmentStrategy):
    """The representative average-case instance e_r: per-feature empirical
    means of the *machine-level* environments historical queries actually
    experienced (not cluster-wide averages — scheduled machines are idler
    than the cluster mean, Section 7.2.5)."""

    name = "loam"

    def __init__(self, records: list[ExecutionRecord] | None = None) -> None:
        self._features: Features = (0.5, 0.05, 0.5, 0.5)
        if records:
            self.fit(records)

    def fit(self, records: list[ExecutionRecord]) -> "HistoricalMeanEnvironment":
        rows = [
            stage.environment.normalized()
            for record in records
            for stage in record.stages
        ]
        if not rows:
            raise ValueError("no stage environments found in records")
        mean = np.mean(np.array(rows), axis=0)
        self._features = (float(mean[0]), float(mean[1]), float(mean[2]), float(mean[3]))
        return self

    def features(self) -> Features:
        return self._features


class ClusterExpectedEnvironment(EnvironmentStrategy):
    """LOAM-CE: expected values of a distribution fitted to cluster-wide
    samples collected over a trailing window (the paper uses 24 h).

    **Side effect**: collecting the window *advances the shared cluster
    clock* by ``n_samples * ticks_between`` ticks (the simulator has no
    retrospective sampling, so a trailing window is emulated by stepping
    time forward).  Collection therefore happens eagerly in ``__init__`` —
    at a well-defined point chosen by the caller — rather than lazily on
    the first ``features()`` read, where the clock jump used to be a hidden
    side effect whose timing depended on when some downstream consumer
    first asked for features.  Pass ``eager=False`` to defer; ``features()``
    then raises until :meth:`collect` is called explicitly.
    """

    name = "loam-ce"

    def __init__(
        self,
        cluster: Cluster,
        *,
        n_samples: int = 72,
        ticks_between: int = 60,
        eager: bool = True,
    ) -> None:
        self.cluster = cluster
        self.n_samples = n_samples
        self.ticks_between = ticks_between
        self._features: Features | None = None
        if eager:
            self.collect()

    def collect(self) -> "ClusterExpectedEnvironment":
        """Sample the trailing window (advances the cluster clock)."""
        rows = []
        for _ in range(self.n_samples):
            self.cluster.advance(self.ticks_between)
            rows.append(self.cluster.cluster_environment().normalized())
        mean = np.mean(np.array(rows), axis=0)
        self._features = (float(mean[0]), float(mean[1]), float(mean[2]), float(mean[3]))
        return self

    def features(self) -> Features:
        if self._features is None:
            raise RuntimeError(
                "ClusterExpectedEnvironment constructed with eager=False: "
                "call collect() before features() (collection advances the "
                "shared cluster clock)"
            )
        return self._features


class ClusterCurrentEnvironment(EnvironmentStrategy):
    """LOAM-CB: the cluster-wide environment right now.  Fresh per query."""

    name = "loam-cb"

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def features(self) -> Features:
        return self.cluster.cluster_environment().normalized()


class NoLoadEnvironment(EnvironmentStrategy):
    """LOAM-NL: environment features zeroed out entirely."""

    name = "loam-nl"

    def features(self) -> Features:
        return (0.0, 0.0, 0.0, 0.0)
