"""The probabilistic deviance framework of Section 5 and Appendix E.1.

For a query with candidate plans P_1..P_n whose execution costs C_E(P_i) are
random in the environment E, define for a model M selecting plan P_M:

    D_E(M) = C_E(P_M) - C_E(P_Mo),        P_Mo = argmin_i C_e(P_i)

Theorem 1:  E[D(M)] >= E[D(M_b)] >= E[D(M_o)] = 0  for every model M that
cannot foresee the environment, where M_b selects the plan of minimum
*expected* cost.

Appendix E.1 machinery implemented here:

* execution costs are modelled as log-normal (validated by a KS test,
  Figure 15), with parameters fitted by MLE over repeated executions;
* the minimum cost C* over the non-selected candidates has the
  order-statistic density of Lemma 1,
  ``f_{C*}(x) = sum_i f_i(x) prod_{j != i} (1 - F_j(x))``;
* ``E[D(M)] = E[(C_sel - C*)^+]`` is evaluated by numerical integration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

# numpy 2.0 renamed trapz to trapezoid; support both.
_trapz = getattr(np, "trapezoid", None) or np.trapz

__all__ = [
    "LogNormalCost",
    "fit_lognormal",
    "kolmogorov_smirnov_pvalue",
    "min_cost_pdf",
    "expected_minimum",
    "expected_deviance",
    "DevianceReport",
    "DevianceEstimator",
]


@dataclass(frozen=True)
class LogNormalCost:
    """Cost distribution of one plan: ``log C ~ Normal(mu, sigma)``."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + 0.5 * self.sigma**2))

    @property
    def median(self) -> float:
        return float(np.exp(self.mu))

    @property
    def variance(self) -> float:
        s2 = self.sigma**2
        return float((np.exp(s2) - 1.0) * np.exp(2.0 * self.mu + s2))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        positive = x > 0
        xp = x[positive]
        out[positive] = np.exp(-((np.log(xp) - self.mu) ** 2) / (2.0 * self.sigma**2)) / (
            xp * self.sigma * np.sqrt(2.0 * np.pi)
        )
        return out

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        positive = x > 0
        out[positive] = stats.norm.cdf((np.log(x[positive]) - self.mu) / self.sigma)
        return out

    def ppf(self, q: float) -> float:
        return float(np.exp(self.mu + self.sigma * stats.norm.ppf(q)))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)


def fit_lognormal(samples: np.ndarray) -> LogNormalCost:
    """Maximum-likelihood fit of a two-parameter log-normal."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size < 2:
        raise ValueError("need at least 2 samples to fit a log-normal")
    if np.any(samples <= 0):
        raise ValueError("log-normal samples must be positive")
    logs = np.log(samples)
    return LogNormalCost(mu=float(logs.mean()), sigma=float(max(logs.std(ddof=1), 1e-9)))


def kolmogorov_smirnov_pvalue(samples: np.ndarray, dist: LogNormalCost | None = None) -> float:
    """KS test of samples against a (fitted) log-normal — the validation the
    paper runs on recurring MaxCompute queries (average p-value ~0.6)."""
    samples = np.asarray(samples, dtype=np.float64)
    dist = dist or fit_lognormal(samples)
    result = stats.kstest(np.log(samples), "norm", args=(dist.mu, dist.sigma))
    return float(result.pvalue)


# -- order statistics over candidate sets ---------------------------------------


def _shared_grid(dists: list[LogNormalCost], n_grid: int) -> np.ndarray:
    lo = min(d.ppf(1e-5) for d in dists)
    hi = max(d.ppf(1.0 - 1e-5) for d in dists)
    return np.exp(np.linspace(np.log(max(lo, 1e-12)), np.log(hi), n_grid))


def min_cost_pdf(dists: list[LogNormalCost], grid: np.ndarray) -> np.ndarray:
    """Lemma 1: density of ``min_i C_i`` for independent candidate costs."""
    if not dists:
        raise ValueError("need at least one distribution")
    pdfs = np.array([d.pdf(grid) for d in dists])
    survivals = np.array([1.0 - d.cdf(grid) for d in dists])
    out = np.zeros_like(grid)
    for i in range(len(dists)):
        others = np.prod(np.delete(survivals, i, axis=0), axis=0) if len(dists) > 1 else 1.0
        out += pdfs[i] * others
    return out


def expected_minimum(dists: list[LogNormalCost], *, n_grid: int = 2048) -> float:
    """E[min_i C_i] — the oracle model's expected cost."""
    if len(dists) == 1:
        return dists[0].mean
    grid = _shared_grid(dists, n_grid)
    pdf = min_cost_pdf(dists, grid)
    return float(_trapz(grid * pdf, grid))


def expected_deviance(
    selected: LogNormalCost,
    others: list[LogNormalCost],
    *,
    n_grid: int = 2048,
) -> float:
    """E[D] = E[(X - Y)^+] with X the selected plan's cost and Y the minimum
    over the other candidates (independent), per Appendix E.1.

    Uses the identity  E[(X - Y)^+] = ∫ f_X(x) (x F_Y(x) - PE_Y(x)) dx
    where PE_Y(x) = E[Y · 1{Y <= x}], evaluated on one shared grid.
    """
    if not others:
        return 0.0
    grid = _shared_grid([selected, *others], n_grid)
    f_x = selected.pdf(grid)
    f_y = min_cost_pdf(others, grid)
    # Cumulative quantities of Y on the grid (trapezoidal increments).
    dx = np.diff(grid)
    inc_mass = 0.5 * (f_y[1:] + f_y[:-1]) * dx
    inc_partial = 0.5 * (grid[1:] * f_y[1:] + grid[:-1] * f_y[:-1]) * dx
    cdf_y = np.concatenate([[0.0], np.cumsum(inc_mass)])
    partial_y = np.concatenate([[0.0], np.cumsum(inc_partial)])
    inner = grid * cdf_y - partial_y  # E[(x - Y)^+] for each grid point x
    return float(max(0.0, _trapz(f_x * inner, grid)))


# -- end-to-end estimation (Appendix E.1, practical part) -------------------------


@dataclass
class DevianceReport:
    """Deviance diagnostics of one query's candidate set."""

    distributions: list[LogNormalCost]
    oracle_cost: float  # E[min over all candidates]
    per_plan_deviance: list[float]  # E[D] if the model always picks plan i
    best_achievable_index: int  # M_b's selection (min expected cost)

    @property
    def best_achievable_deviance(self) -> float:
        return self.per_plan_deviance[self.best_achievable_index]

    def deviance_of(self, index: int) -> float:
        return self.per_plan_deviance[index]

    def relative_deviance_of(self, index: int) -> float:
        return self.per_plan_deviance[index] / max(self.oracle_cost, 1e-12)

    @property
    def best_achievable_relative_deviance(self) -> float:
        return self.relative_deviance_of(self.best_achievable_index)

    def improvement_space(self, default_index: int) -> float:
        """D(M_d) normalized by the oracle cost — the per-query improvement
        space that drives project selection (Section 6)."""
        return self.relative_deviance_of(default_index)


class DevianceEstimator:
    """Fits candidate cost distributions from repeated executions and
    evaluates the deviance of any selection rule (Appendix E.1)."""

    def __init__(self, *, n_samples: int = 12, n_grid: int = 2048) -> None:
        if n_samples < 2:
            raise ValueError("need at least 2 executions per plan to fit costs")
        self.n_samples = n_samples
        self.n_grid = n_grid

    def fit_plan_costs(self, sample_costs: list[np.ndarray]) -> list[LogNormalCost]:
        return [fit_lognormal(samples) for samples in sample_costs]

    def report(self, dists: list[LogNormalCost]) -> DevianceReport:
        if not dists:
            raise ValueError("need at least one candidate distribution")
        per_plan = [
            expected_deviance(dist, [d for j, d in enumerate(dists) if j != i], n_grid=self.n_grid)
            for i, dist in enumerate(dists)
        ]
        return DevianceReport(
            distributions=dists,
            oracle_cost=expected_minimum(dists, n_grid=self.n_grid),
            per_plan_deviance=per_plan,
            best_achievable_index=int(np.argmin([d.mean for d in dists])),
        )

    def report_from_samples(self, sample_costs: list[np.ndarray]) -> DevianceReport:
        return self.report(self.fit_plan_costs(sample_costs))
