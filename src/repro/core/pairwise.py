"""Extension: a Lero-style pairwise plan comparator.

The paper's related work (Lero, Zhu et al. 2023) frames plan selection as
learning-to-rank: instead of predicting absolute costs, learn whether plan
A is cheaper than plan B.  LOAM deliberately predicts absolute CPU cost,
but a comparator is a natural extension of this codebase: it reuses the
statistics-free encoding and the TCN embedding, trains on *pairs of
historical default plans* ordered by measured cost (still requiring no
candidate executions), and selects candidates by tournament scoring.

The comparator head follows Lero's symmetric construction:
``score(A, B) = sigmoid(w · (e_A - e_B))`` — the probability that A is the
more expensive plan.  Antisymmetry (swap the pair, flip the probability) is
exact by construction.
"""

from __future__ import annotations

import numpy as np

from repro.core.encoding import EncodedPlan, PlanEncoder
from repro.nn.autodiff import Tensor, no_grad, sigmoid
from repro.nn.layers import Linear, Module
from repro.nn.optim import Adam
from repro.nn.tree_conv import TreeBatch, TreeConvEncoder
from repro.warehouse.plan import PhysicalPlan

__all__ = ["PairwiseComparator"]


class _ComparatorModule(Module):
    def __init__(self, in_dim: int, hidden: tuple[int, ...], emb: int, rng) -> None:
        self.encoder = TreeConvEncoder(in_dim, hidden_dims=hidden, embedding_dim=emb, rng=rng)
        self.head = Linear(emb, 1, rng=rng)
        # A bias would break the comparator's antisymmetry:
        # sigmoid(w (e_A - e_B)) must flip exactly under a swap.
        self.head.bias.requires_grad = False
        self.head.bias.data[:] = 0.0

    def embed(self, batch: TreeBatch) -> Tensor:
        return self.encoder(batch)

    def more_expensive_probability(self, emb_a: Tensor, emb_b: Tensor) -> Tensor:
        return sigmoid(self.head(emb_a - emb_b).reshape(-1))


class PairwiseComparator:
    """Learning-to-rank plan comparator trained on historical defaults."""

    def __init__(
        self,
        encoder: PlanEncoder | None = None,
        *,
        hidden_dims: tuple[int, ...] = (64, 64),
        embedding_dim: int = 32,
        epochs: int = 10,
        pairs_per_epoch: int = 2048,
        learning_rate: float = 0.003,
        seed: int = 0,
    ) -> None:
        self.encoder = encoder or PlanEncoder()
        self._rng = np.random.default_rng(seed)
        self.module = _ComparatorModule(
            self.encoder.dim, hidden_dims, embedding_dim, np.random.default_rng(seed)
        )
        self.epochs = epochs
        self.pairs_per_epoch = pairs_per_epoch
        self.learning_rate = learning_rate
        self.trained = False

    def fit(self, plans: list[PhysicalPlan], costs: list[float] | np.ndarray) -> None:
        """Train on cost-ordered pairs sampled from executed default plans.

        Pairs whose costs differ by less than 20 % are skipped: their order
        is dominated by environment noise, not plan quality.
        """
        if len(plans) < 2:
            raise ValueError("need at least two plans to form pairs")
        costs = np.asarray(costs, dtype=np.float64)
        encoded = self.encoder.encode_plans(plans)
        optimizer = Adam(list(self.module.parameters()), lr=self.learning_rate)
        n = len(plans)
        for _ in range(self.epochs):
            a_idx = self._rng.integers(0, n, size=self.pairs_per_epoch)
            b_idx = self._rng.integers(0, n, size=self.pairs_per_epoch)
            keep = np.abs(np.log((costs[a_idx] + 1.0) / (costs[b_idx] + 1.0))) > np.log(1.2)
            a_idx, b_idx = a_idx[keep], b_idx[keep]
            for start in range(0, len(a_idx), 64):
                a_batch = a_idx[start : start + 64]
                b_batch = b_idx[start : start + 64]
                if len(a_batch) < 2:
                    continue
                emb_a = self.module.embed(_batch(encoded, a_batch))
                emb_b = self.module.embed(_batch(encoded, b_batch))
                prob = self.module.more_expensive_probability(emb_a, emb_b)
                label = (costs[a_batch] > costs[b_batch]).astype(float)
                label_t = Tensor(label)
                eps = 1e-7
                loss = -(
                    label_t * (prob + eps).log()
                    + (1.0 - label_t) * (1.0 - prob + eps).log()
                ).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        self.trained = True
        self.module.eval()

    def pairwise_probability(self, plan_a: PhysicalPlan, plan_b: PhysicalPlan) -> float:
        """P(plan_a is more expensive than plan_b)."""
        self._require_trained()
        encoded = self.encoder.encode_plans(
            [plan_a, plan_b], env_override=(0.5, 0.05, 0.5, 0.5)
        )
        with no_grad():
            emb = self.module.embed(_batch(encoded, np.array([0, 1])))
            emb_a = emb[np.array([0])]
            emb_b = emb[np.array([1])]
            prob = self.module.more_expensive_probability(emb_a, emb_b)
        return float(prob.data[0])

    def select_best(
        self,
        plans: list[PhysicalPlan],
        *,
        env_features: tuple[float, float, float, float] | None = (0.5, 0.05, 0.5, 0.5),
    ) -> tuple[PhysicalPlan, np.ndarray]:
        """Round-robin tournament: lowest total 'more expensive' score wins.

        The returned score array is comparable to predicted costs for the
        purposes of argmin-based selection harnesses.
        """
        self._require_trained()
        if not plans:
            raise ValueError("no plans to select from")
        encoded = self.encoder.encode_plans(plans, env_override=env_features)
        with no_grad():
            embeddings = self.module.embed(_batch(encoded, np.arange(len(plans))))
            scores = np.zeros(len(plans))
            for i in range(len(plans)):
                for j in range(len(plans)):
                    if i == j:
                        continue
                    prob = self.module.more_expensive_probability(
                        embeddings[np.array([i])], embeddings[np.array([j])]
                    )
                    scores[i] += float(prob.data[0])
        return plans[int(np.argmin(scores))], scores

    def predict(
        self,
        plans: list[PhysicalPlan],
        *,
        env_features: tuple[float, float, float, float] | None = None,
    ) -> np.ndarray:
        """CostModel-protocol adapter: tournament scores as pseudo-costs."""
        _, scores = self.select_best(
            plans, env_features=env_features or (0.5, 0.05, 0.5, 0.5)
        )
        return scores

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("PairwiseComparator used before fit()")


def _batch(encoded: list[EncodedPlan], indices: np.ndarray) -> TreeBatch:
    return TreeBatch.from_trees(
        [(encoded[i].features, encoded[i].left, encoded[i].right) for i in indices]
    )
