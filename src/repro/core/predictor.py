"""The adaptive cost predictor (Section 4, Figure 3).

Architecture::

                        +----------> CostPred ----> cost  (L_c: MSE)
    plan --> PlanEmb ---+
             (TCN)      +--> GRL --> DomClf  ----> default/candidate  (L_d: CE)

* **PlanEmb** — a Tree Convolutional Network mapping the vectorized plan to
  an n-dimensional embedding e_P;
* **CostPred** — a fully connected head predicting (standardized log) CPU
  cost;
* **DomClf** — two fully connected layers classifying whether the embedding
  came from a historical *default* plan or a knob-tuned *candidate* plan,
  reached through a gradient reversal layer so that PlanEmb is pushed toward
  domain-invariant representations (adversarial/DANN training).

Training minimizes ``L = w_c * L_c(defaults) + w_d * L_d(defaults ∪
candidates)`` (Eq. 1).  Candidate plans are never executed: only their
*features* are needed, so preparing them costs plan generation time alone
(challenge C3).  ``w_c``/``w_d`` are balanced automatically from the running
scales of the two losses, as the paper prescribes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.encoding import EncodedPlan, PlanEncoder
from repro.nn.autodiff import Tensor, concat, no_grad, relu
from repro.nn.grl import GradientReversal
from repro.nn.layers import Linear, Module, ReLU, Sequential
from repro.nn.losses import cross_entropy_loss, mse_loss
from repro.nn.optim import Adam, ExponentialDecay
from repro.nn.tree_conv import TreeBatch, TreeConvEncoder
from repro.warehouse.plan import PhysicalPlan

__all__ = ["PredictorConfig", "TrainingReport", "AdaptiveCostPredictor"]


@dataclass(frozen=True)
class PredictorConfig:
    """Hyperparameters.  Defaults follow Bao/Lero-style settings with the
    paper's optimization setup (lr 0.01, exponential decay 0.99/epoch)."""

    hidden_dims: tuple[int, ...] = (64, 64)
    embedding_dim: int = 32
    domain_hidden_dim: int = 32
    epochs: int = 20
    batch_size: int = 64
    learning_rate: float = 0.01
    lr_decay: float = 0.99
    adversarial: bool = True
    #: Scales the gradient-reversal coefficient.  Full-strength DANN erases
    #: the very node features that distinguish candidate structures (their
    #: presence is what separates the domains), collapsing cost predictions;
    #: a small reversal aligns the embedding distributions while leaving the
    #: cost head discriminative.
    grl_strength: float = 0.1
    #: False reproduces the LOAM-NL ablation: environment features are zeroed
    #: during both training and inference (Section 7.2.5).
    use_environment: bool = True
    #: "node_sum" — cost is the sum of per-node softplus contributions
    #: (CPU cost is additive over operators, so candidate plans differing in
    #: one structural edit get sharply distinguishable predictions);
    #: "pooled" — a single FC head on the pooled embedding (Bao-style).
    cost_head: str = "node_sum"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cost_head not in ("node_sum", "pooled"):
            raise ValueError(f"unknown cost_head {self.cost_head!r}")


@dataclass
class TrainingReport:
    """What happened during fit(): per-epoch losses and wall-clock time."""

    cost_losses: list[float] = field(default_factory=list)
    domain_losses: list[float] = field(default_factory=list)
    train_seconds: float = 0.0
    n_default_plans: int = 0
    n_candidate_plans: int = 0
    #: Optimizer steps taken across all epochs.
    n_batches: int = 0
    #: n_batches / train_seconds (Figure 9's training-throughput row).
    steps_per_second: float = 0.0
    #: Whether the bucketed prebuilt-buffer path was used (False = reference).
    fast_path: bool = True


def _softplus(x: Tensor) -> Tensor:
    """Numerically stable softplus built from primitive ops."""
    neg_abs = -(relu(x) + relu(-x))
    return relu(x) + ((neg_abs.exp() + 1.0).log())


class _PredictiveModule(Module):
    """PlanEmb + CostPred + (GRL -> DomClf)."""

    def __init__(self, in_dim: int, config: PredictorConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.plan_emb = TreeConvEncoder(
            in_dim,
            hidden_dims=config.hidden_dims,
            embedding_dim=config.embedding_dim,
            rng=rng,
        )
        self.cost_pred = Linear(config.embedding_dim, 1, rng=rng)
        self.node_head = Linear(config.hidden_dims[-1], 1, rng=rng)
        self.log_scale = Tensor.param(np.zeros(1))
        self.grl = GradientReversal()
        self.dom_clf = Sequential(
            Linear(config.embedding_dim, config.domain_hidden_dim, rng=rng),
            ReLU(),
            Linear(config.domain_hidden_dim, 2, rng=rng),
        )
        self._log_mean = 0.0
        self._log_std = 1.0

    def set_label_transform(self, log_mean: float, log_std: float, typical_nodes: float) -> None:
        self._log_mean = log_mean
        self._log_std = log_std
        # Start the node-sum head near the label scale so early training is
        # not dominated by a constant offset.
        expected_sum = max(1.0, 0.7 * typical_nodes)
        self.log_scale.data = np.array([log_mean - np.log1p(expected_sum)])

    def embed_with_nodes(self, batch: TreeBatch) -> tuple[Tensor, Tensor]:
        nodes = self.plan_emb.node_representations(batch)
        embedding = self.plan_emb.pool(nodes, batch)
        return nodes, embedding

    def embed(self, batch: TreeBatch) -> Tensor:
        return self.plan_emb(batch)

    def predict_cost(self, nodes: Tensor, embedding: Tensor, batch: TreeBatch) -> Tensor:
        """Standardized log-cost prediction (z-space)."""
        if self.config.cost_head == "pooled":
            return self.cost_pred(embedding).reshape(-1)
        contributions = _softplus(self.node_head(nodes)) * Tensor(batch.mask)
        total = contributions.sum(axis=(1, 2))  # (B,)
        cost = total * self.log_scale.exp()
        log_cost = (cost + 1.0).log()
        return (log_cost - self._log_mean) * (1.0 / self._log_std)

    def classify_domain(self, embedding: Tensor) -> Tensor:
        return self.dom_clf(self.grl(embedding))


class AdaptiveCostPredictor:
    """LOAM's cost model: trains on historical default plans, generalizes to
    candidate plans through adversarial domain adaptation."""

    def __init__(
        self,
        encoder: PlanEncoder | None = None,
        config: PredictorConfig | None = None,
    ) -> None:
        self.encoder = encoder or PlanEncoder()
        self.config = config or PredictorConfig()
        rng = np.random.default_rng(self.config.seed)
        self.module = _PredictiveModule(self.encoder.dim, self.config, rng)
        self._rng = rng
        self._log_mean = 0.0
        self._log_std = 1.0
        self.report: TrainingReport | None = None
        #: Bumped on every fit(); the serving layer re-snapshots weights and
        #: drops cached predictions when it observes a new version.
        self.weights_version = 0
        self._serving = None

    @property
    def serving(self):
        """The lazily constructed online fast path (encode cache + bucketed
        batching + inference-only forward).  ``predict``/``select_best``
        route through it; see :mod:`repro.serving.service`."""
        if self._serving is None:
            from repro.serving.service import CostInferenceService

            self._serving = CostInferenceService(self)
        return self._serving

    # -- label transform ---------------------------------------------------------

    def _to_target(self, costs: np.ndarray) -> np.ndarray:
        return (np.log1p(costs) - self._log_mean) / self._log_std

    def _from_target(self, z: np.ndarray) -> np.ndarray:
        return np.expm1(z * self._log_std + self._log_mean)

    # -- training -------------------------------------------------------------------

    def fit(
        self,
        default_plans: list[PhysicalPlan],
        costs: list[float] | np.ndarray,
        candidate_plans: list[PhysicalPlan] | None = None,
        *,
        fast_path: bool = True,
    ) -> TrainingReport:
        """Train on executed default plans; align domains against unexecuted
        candidate plans (which need no cost labels).

        Mini-batches are global-permutation chunks, exactly as the training
        dynamics were tuned (size-homogeneous batches measurably degrade the
        learned model: plan size correlates with cost, so bucketing batch
        *composition* starves each step of label diversity).  With
        ``fast_path=True`` (default) the encoded plans are size-bucketed into
        padded float32 buffers prebuilt once before the first epoch; a batch
        is assembled from a few vectorized bucket-slice copies trimmed to the
        batch's largest tree, the conv stack runs through the fused tree-conv
        op, and the cost-forward embeddings are reused for the domain loss.
        ``fast_path=False`` is the reference: per-batch Python list assembly
        through ``TreeBatch.from_trees``, the unfused op-by-op autodiff chain,
        and a full re-forward of defaults for the domain batch.  The two paths
        consume the RNG identically and compute the same math, so their loss
        trajectories agree to float32 round-off (gated in the tests and in
        ``benchmarks/bench_training_throughput.py``).
        """
        if len(default_plans) != len(costs):
            raise ValueError("plans and costs must have equal length")
        if len(default_plans) == 0:
            raise ValueError("cannot train on an empty plan set")
        adversarial = self.config.adversarial and bool(candidate_plans)
        candidate_plans = candidate_plans or []

        costs = np.asarray(costs, dtype=np.float64)
        logs = np.log1p(costs)
        self._log_mean = float(logs.mean())
        self._log_std = float(max(logs.std(), 1e-6))
        targets = self._to_target(costs)
        typical_nodes = float(np.mean([p.n_nodes for p in default_plans]))
        self.module.set_label_transform(self._log_mean, self._log_std, typical_nodes)

        # Encode once.  Default plans carry their logged stage environments.
        # Candidates are unexecuted, so they have no environment; encoding
        # them all with one constant would hand DomClf a trivial tell (it
        # would separate domains on the environment block alone, and the GRL
        # would then erase the environment features instead of aligning plan
        # structure).  We therefore sample each candidate's environment block
        # from the empirical distribution of training environments.
        if self.config.use_environment:
            encoded_defaults = self.encoder.encode_plans(default_plans)
            env_pool = [
                node.env
                for plan in default_plans
                for node in plan.iter_nodes()
                if node.env is not None
            ]
            overrides = [
                env_pool[int(self._rng.integers(0, len(env_pool)))] if env_pool else None
                for _ in candidate_plans
            ]
            encoded_candidates = self.encoder.encode_plans(
                candidate_plans, env_overrides=overrides
            )
        else:
            zero = (0.0, 0.0, 0.0, 0.0)
            encoded_defaults = self.encoder.encode_plans(default_plans, env_override=zero)
            encoded_candidates = self.encoder.encode_plans(candidate_plans, env_override=zero)

        report = TrainingReport(
            n_default_plans=len(default_plans),
            n_candidate_plans=len(candidate_plans),
            fast_path=fast_path,
        )
        started = time.perf_counter()

        optimizer = Adam(list(self.module.parameters()), lr=self.config.learning_rate)
        scheduler = ExponentialDecay(optimizer, gamma=self.config.lr_decay)
        batch = self.config.batch_size
        n = len(encoded_defaults)
        total_steps = max(1, self.config.epochs * max(1, n // batch))
        step = 0
        cost_ema, dom_ema = 1.0, 1.0

        default_buffers = cand_buffers = None
        if fast_path:
            default_buffers = _PaddedPlanBuffers(encoded_defaults)
            if adversarial:
                cand_buffers = _PaddedPlanBuffers(encoded_candidates)

        self.module.train()
        for epoch in range(self.config.epochs):
            order = self._rng.permutation(n)
            epoch_cost, epoch_dom, n_batches = 0.0, 0.0, 0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                if len(idx) < 2:
                    continue
                step += 1
                self.module.grl.set_progress(step / total_steps)
                self.module.grl.lam *= self.config.grl_strength
                if adversarial:
                    k = min(len(encoded_candidates), len(idx))
                    cand_idx = self._rng.choice(
                        len(encoded_candidates), size=k, replace=False
                    )

                if fast_path:
                    tree_batch = default_buffers.batch(idx)
                    nodes = self.module.plan_emb.node_representations_fused(tree_batch)
                    embedding = self.module.plan_emb.pool(nodes, tree_batch)
                else:
                    defaults = [encoded_defaults[i] for i in idx]
                    tree_batch = _to_tree_batch(defaults)
                    nodes, embedding = self.module.embed_with_nodes(tree_batch)
                cost_out = self.module.predict_cost(nodes, embedding, tree_batch)
                loss_c = mse_loss(cost_out, targets[idx])

                if adversarial:
                    if fast_path:
                        # Reuse the cost-forward embeddings for the domain
                        # half: computing f(x) once or twice yields identical
                        # values and, by linearity of accumulation, identical
                        # parameter gradients.
                        cand_batch = cand_buffers.batch(cand_idx)
                        cand_emb = self.module.plan_emb.embed_fused(cand_batch)
                        dom_embedding = concat([embedding, cand_emb], axis=0)
                    else:
                        cands = [encoded_candidates[i] for i in cand_idx]
                        dom_batch = _to_tree_batch(defaults + cands)
                        dom_embedding = self.module.embed(dom_batch)
                    logits = self.module.classify_domain(dom_embedding)
                    labels = np.concatenate([np.zeros(len(idx)), np.ones(k)]).astype(int)
                    loss_d = cross_entropy_loss(logits, labels)
                    # Automatic loss balancing from running scales (Eq. 1).
                    cost_ema = 0.95 * cost_ema + 0.05 * loss_c.item()
                    dom_ema = 0.95 * dom_ema + 0.05 * loss_d.item()
                    # Balance toward the cost objective: the domain loss is a
                    # regularizer and must not overwhelm regression accuracy.
                    w_d = min(1.0, max(0.05, cost_ema / max(dom_ema, 1e-8)))
                    total = loss_c + loss_d * w_d
                    epoch_dom += loss_d.item()
                else:
                    total = loss_c

                optimizer.zero_grad()
                total.backward()
                optimizer.step()
                epoch_cost += loss_c.item()
                n_batches += 1
            scheduler.step()
            report.cost_losses.append(epoch_cost / max(1, n_batches))
            report.domain_losses.append(epoch_dom / max(1, n_batches))
            report.n_batches += n_batches

        report.train_seconds = time.perf_counter() - started
        report.steps_per_second = report.n_batches / max(report.train_seconds, 1e-9)
        self.report = report
        self.module.eval()
        self.weights_version += 1
        return report

    # -- inference -----------------------------------------------------------------------

    def predict(
        self,
        plans: list[PhysicalPlan],
        *,
        env_features: tuple[float, float, float, float] | None = None,
    ) -> np.ndarray:
        """Predicted CPU cost of each plan, with the environment block set to
        ``env_features`` (or each node's logged environment when ``None``).

        Served through :attr:`serving` — cached encodings, size-bucketed
        micro-batches, and a no-autodiff forward.  :meth:`predict_baseline`
        retains the unoptimized path (the serving layer's numerical oracle)."""
        if not plans:
            return np.zeros(0)
        return self.serving.predict(plans, env_features=env_features)

    def predict_baseline(
        self,
        plans: list[PhysicalPlan],
        *,
        env_features: tuple[float, float, float, float] | None = None,
    ) -> np.ndarray:
        """The naive inference path: full re-encode of every plan, one padded
        batch, forward pass through the autodiff engine.  Kept for the
        serving equivalence tests and throughput benchmarks."""
        if not plans:
            return np.zeros(0)
        if not self.config.use_environment:
            env_features = (0.0, 0.0, 0.0, 0.0)
        encoded = [
            self.encoder.encode_plan_reference(p, env_override=env_features) for p in plans
        ]
        return self.predict_encoded(encoded)

    def predict_encoded(self, encoded: list[EncodedPlan]) -> np.ndarray:
        self.module.eval()
        with no_grad():
            batch = _to_tree_batch(encoded)
            nodes, embedding = self.module.embed_with_nodes(batch)
            z = self.module.predict_cost(nodes, embedding, batch)
        return np.maximum(self._from_target(z.data), 0.0)

    def embeddings(self, plans: list[PhysicalPlan], **kwargs) -> np.ndarray:
        """Plan embeddings e_P (used by tests and domain-shift diagnostics)."""
        encoded = self.encoder.encode_plans(plans, **kwargs)
        with no_grad():
            return self.module.embed(_to_tree_batch(encoded)).data

    def select_best(
        self,
        plans: list[PhysicalPlan],
        *,
        env_features: tuple[float, float, float, float] | None = None,
    ) -> tuple[PhysicalPlan, np.ndarray]:
        """The steering decision: pick the candidate with least predicted cost."""
        predictions = self.predict(plans, env_features=env_features)
        return plans[int(np.argmin(predictions))], predictions

    # -- introspection -----------------------------------------------------------------------

    def size_bytes(self) -> int:
        return self.module.size_bytes()

    @property
    def train_seconds(self) -> float:
        return self.report.train_seconds if self.report else 0.0


def _to_tree_batch(encoded: list[EncodedPlan]) -> TreeBatch:
    return TreeBatch.from_trees([(e.features, e.left, e.right) for e in encoded])


class _PaddedPlanBuffers:
    """Size-bucketed padded float32 training buffers, prebuilt once per fit().

    ``TreeBatch.from_trees`` — the per-tree Python assembly loop with child
    validation — runs once per size bucket here instead of once per
    mini-batch per epoch.  Buckets only organize *storage* (a 5-node plan is
    never stored padded to a 40-node straggler); mini-batch composition stays
    a global permutation, and :meth:`batch` assembles a mixed-size batch with
    one vectorized slice copy per bucket present, trimmed to the batch's
    largest tree — the same padding ``from_trees`` would produce."""

    def __init__(
        self,
        encoded: list[EncodedPlan],
        *,
        dtype: np.dtype | type = np.float32,
    ) -> None:
        self._dtype = dtype
        self._n_nodes = np.array([e.n_nodes for e in encoded], dtype=np.int64)
        self._bucket = np.zeros(len(encoded), dtype=np.int64)
        self._row = np.zeros(len(encoded), dtype=np.int64)
        self._batches: list[TreeBatch] = []
        for bucket_id, (size, members) in enumerate(
            TreeBatch.bucket_indices([e.n_nodes for e in encoded])
        ):
            for pos, g in enumerate(members):
                self._bucket[g] = bucket_id
                self._row[g] = pos
            self._batches.append(
                TreeBatch.from_trees(
                    [(encoded[g].features, encoded[g].left, encoded[g].right) for g in members],
                    dtype=dtype,
                    pad_to=size,
                )
            )

    def batch(self, indices: np.ndarray) -> TreeBatch:
        """A mini-batch TreeBatch gathered by *global* plan indices."""
        indices = np.asarray(indices)
        width = int(self._n_nodes[indices].max()) + 1
        n_rows = len(indices)
        dim = self._batches[0].feature_dim
        features = np.zeros((n_rows, width, dim), dtype=self._dtype)
        left = np.zeros((n_rows, width), dtype=np.int64)
        right = np.zeros((n_rows, width), dtype=np.int64)
        mask = np.zeros((n_rows, width, 1), dtype=self._dtype)
        batch_buckets = self._bucket[indices]
        for bucket_id in np.unique(batch_buckets):
            sel = np.nonzero(batch_buckets == bucket_id)[0]
            rows = self._row[indices[sel]]
            src = self._batches[bucket_id]
            w = min(width, src.features.shape[1])
            features[sel, :w] = src.features[rows, :w]
            left[sel, :w] = src.left[rows, :w]
            right[sel, :w] = src.right[rows, :w]
            mask[sel, :w] = src.mask[rows, :w]
        return TreeBatch(features=features, left=left, right=right, mask=mask)
