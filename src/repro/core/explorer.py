"""The steering plan explorer (Section 3).

For each query the explorer asks the *native* optimizer for a set of diverse
candidate plans: once per toggled optimizer flag (Bao-style) and once per
cardinality-scaling factor for queries with at least three inputs
(Lero-style).  The default (unsteered) plan is always included.  Structural
duplicates are removed, and at evaluation time only the top-k candidates by
the native optimizer's rough cost estimate are retained (Section 7.1 keeps
the top 5).

LOAM is agnostic to the exploration strategy: any callable producing
(provenance, knobs) pairs can be plugged in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.warehouse.flags import CARDINALITY_SCALES, OPTIMIZER_FLAGS, OptimizerFlags
from repro.warehouse.optimizer import NativeOptimizer
from repro.warehouse.plan import PhysicalPlan
from repro.warehouse.query import Query

__all__ = ["PlanExplorer", "ExplorationResult"]


@dataclass
class ExplorationResult:
    """Candidate plans plus generation overhead (reported in Section 7.2.1)."""

    plans: list[PhysicalPlan]
    generation_seconds: float

    @property
    def default_plan(self) -> PhysicalPlan:
        for plan in self.plans:
            if plan.is_default:
                return plan
        raise LookupError("exploration result lost the default plan")


class PlanExplorer:
    """Generates diverse candidate plans by steering the native optimizer.

    ``flag_pairs=True`` enables the diversified exploration the paper's
    Section 7.3 points to as the lever for larger fleet-wide gains: in
    addition to single-flag toggles, every pair of flags is tried.  The
    candidate pool grows from ~9 to ~24 plans before deduplication, at
    proportionally higher plan-generation cost.
    """

    def __init__(
        self,
        optimizer: NativeOptimizer,
        *,
        flags: tuple[str, ...] = OPTIMIZER_FLAGS,
        cardinality_scales: tuple[float, ...] = CARDINALITY_SCALES,
        min_tables_for_scaling: int = 3,
        flag_pairs: bool = False,
    ) -> None:
        unknown = set(flags) - set(OPTIMIZER_FLAGS)
        if unknown:
            raise ValueError(f"unknown optimizer flags: {sorted(unknown)}")
        self.optimizer = optimizer
        self.flags = flags
        self.cardinality_scales = cardinality_scales
        self.min_tables_for_scaling = min_tables_for_scaling
        self.flag_pairs = flag_pairs

    def explore(self, query: Query, *, top_k: int | None = None) -> ExplorationResult:
        """Produce deduplicated candidates; optionally prune to ``top_k``
        (the default plan is never pruned)."""
        started = time.perf_counter()
        plans = [self.optimizer.optimize(query, provenance="default")]
        for flag in self.flags:
            plans.append(
                self.optimizer.optimize(
                    query,
                    flags=OptimizerFlags().toggled(flag),
                    provenance=f"flag:{flag}",
                )
            )
        if self.flag_pairs:
            for i, first in enumerate(self.flags):
                for second in self.flags[i + 1 :]:
                    plans.append(
                        self.optimizer.optimize(
                            query,
                            flags=OptimizerFlags().toggled(first).toggled(second),
                            provenance=f"flags:{first}+{second}",
                        )
                    )
        if query.n_tables >= self.min_tables_for_scaling:
            for scale in self.cardinality_scales:
                plans.append(
                    self.optimizer.optimize(
                        query,
                        cardinality_scale=scale,
                        provenance=f"cardscale:{scale}",
                    )
                )
        plans = self._deduplicate(plans)
        if top_k is not None and len(plans) > top_k:
            plans = self._prune(plans, top_k)
        return ExplorationResult(plans=plans, generation_seconds=time.perf_counter() - started)

    def candidates(self, query: Query, *, top_k: int | None = None) -> list[PhysicalPlan]:
        return self.explore(query, top_k=top_k).plans

    @staticmethod
    def _deduplicate(plans: list[PhysicalPlan]) -> list[PhysicalPlan]:
        seen: set = set()
        unique = []
        for plan in plans:
            signature = plan.structural_signature()
            if signature in seen:
                continue
            seen.add(signature)
            unique.append(plan)
        return unique

    def _prune(self, plans: list[PhysicalPlan], top_k: int) -> list[PhysicalPlan]:
        """Keep the default plan plus the (top_k - 1) candidates with the
        lowest native rough cost estimates."""
        default = [p for p in plans if p.is_default]
        steered = [p for p in plans if not p.is_default]
        steered.sort(key=self.optimizer.estimated_cost)
        return default + steered[: max(0, top_k - len(default))]
