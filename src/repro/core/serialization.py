"""Saving and loading trained predictors.

A deployed LOAM instance must persist its cost predictor between the
offline training pipeline and the online serving path.  Parameters are
stored as a single ``.npz`` archive together with the label transform and
the fitted representative environment, so a reloaded predictor reproduces
the exact serving behaviour.

Format v2 extends the manifest with deployment metadata consumed by the
model lifecycle subsystem (:mod:`repro.lifecycle`): the predictor's
``weights_version`` (so a reloaded model does not restart at version 0 and
collide with stale serving-cache entries), a training-data fingerprint, and
arbitrary metrics recorded at registration time.  v1 archives still load;
their ``weights_version`` defaults to 0.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.encoding import PlanEncoder
from repro.core.predictor import AdaptiveCostPredictor, PredictorConfig

__all__ = ["save_predictor", "load_predictor", "load_manifest"]

_FORMAT_VERSION = 2


def save_predictor(
    predictor: AdaptiveCostPredictor,
    path: str | Path,
    *,
    environment_features: tuple[float, float, float, float] | None = None,
    training_fingerprint: str | None = None,
    metrics: dict | None = None,
) -> Path:
    """Serialize a trained predictor (parameters + config + label transform).

    ``environment_features`` optionally stores the fitted representative
    environment e_r so serving needs no access to the training records.
    ``training_fingerprint`` and ``metrics`` are lifecycle manifest fields:
    a digest of the training data and whatever validation numbers the
    registrar wants attached to this checkpoint.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays = {
        f"param_{i}": param.data for i, param in enumerate(predictor.module.parameters())
    }
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": asdict(predictor.config),
        "log_mean": predictor._log_mean,
        "log_std": predictor._log_std,
        "weights_version": int(getattr(predictor, "weights_version", 0)),
        "encoder": {
            "hash_segments": predictor.encoder.hasher.n_segments,
            "hash_segment_dim": predictor.encoder.hasher.segment_dim,
        },
        "environment_features": list(environment_features) if environment_features else None,
        "training_fingerprint": training_fingerprint,
        "metrics": dict(metrics) if metrics else {},
    }
    np.savez_compressed(path, meta=json.dumps(meta), **arrays)
    return path


def load_manifest(path: str | Path) -> dict:
    """Read a checkpoint's JSON manifest without materializing the weights.

    The registry uses this to rebuild its index from the files on disk.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        return json.loads(str(archive["meta"]))


def load_predictor(
    path: str | Path,
) -> tuple[AdaptiveCostPredictor, tuple[float, float, float, float] | None]:
    """Restore a predictor saved by :func:`save_predictor`.

    Returns the predictor and the stored representative environment
    features (or ``None`` if none were saved).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta["format_version"] not in (1, _FORMAT_VERSION):
            raise ValueError(
                f"unsupported predictor format {meta['format_version']} in {path}"
            )
        config_dict = dict(meta["config"])
        config_dict["hidden_dims"] = tuple(config_dict["hidden_dims"])
        config = PredictorConfig(**config_dict)
        encoder = PlanEncoder(
            hash_segments=meta["encoder"]["hash_segments"],
            hash_segment_dim=meta["encoder"]["hash_segment_dim"],
        )
        predictor = AdaptiveCostPredictor(encoder, config)
        params = list(predictor.module.parameters())
        for i, param in enumerate(params):
            stored = archive[f"param_{i}"]
            if stored.shape != param.data.shape:
                raise ValueError(
                    f"parameter {i} shape mismatch: archive {stored.shape} vs "
                    f"model {param.data.shape}"
                )
            param.data = stored.copy()
        predictor._log_mean = float(meta["log_mean"])
        predictor._log_std = float(meta["log_std"])
        # The module keeps its own copy of the label transform for the
        # node-sum cost head; log_scale itself was restored above.
        predictor.module._log_mean = predictor._log_mean
        predictor.module._log_std = predictor._log_std
        predictor.weights_version = int(meta.get("weights_version", 0))
        env = meta["environment_features"]
    predictor.module.eval()
    return predictor, tuple(env) if env else None
