"""Fleet-scale deployment orchestration: the full "one-stop" loop.

Figure 2's pipeline, operated across a fleet of projects:

1. **Filter** — exclude projects with training challenges (rules R1–R3);
2. **Rank** — estimate each surviving project's improvement space D(M_d)
   with the learned Ranker and keep the top-N;
3. **Train** — fit an adaptive cost predictor per selected project from its
   historical repository;
4. **Validate** — replay held-out queries in flighting; deploy only when
   the measured improvement clears the gate;
5. **Feedback** — measured (default plan, D(M_d)) pairs from validation
   flow back into the Ranker's training pool, so ranking accuracy improves
   as more projects are evaluated (Section 6's closing loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.deviance import DevianceEstimator
from repro.core.explorer import PlanExplorer
from repro.core.loam import LOAM, LOAMConfig, ValidationReport
from repro.core.selector import FilterConfig, ProjectFilter, ProjectRanker
from repro.gateway import GatewayConfig, GatewayResult, OptimizerGateway
from repro.lifecycle import (
    CanaryConfig,
    CanaryReport,
    DriftConfig,
    ModelLifecycle,
    training_data_fingerprint,
)
from repro.warehouse.plan import PhysicalPlan
from repro.warehouse.workload import ProjectWorkload

__all__ = ["DeploymentConfig", "ProjectOutcome", "FleetReport", "FleetManager"]


@dataclass(frozen=True)
class DeploymentConfig:
    """Operating parameters of the fleet loop."""

    top_n: int = 3  # projects to train per round (Section 6: top-N)
    min_validated_improvement: float = 0.0  # deployment gate
    validation_queries: int = 10
    ranker_queries_per_project: int = 5  # workload sample for scoring
    deviance_samples: int = 6  # executions per plan when measuring D(M_d)
    loam: LOAMConfig = field(default_factory=LOAMConfig)
    filter: FilterConfig = field(default_factory=FilterConfig)
    #: Canary gate for re-deployments: a retrained model must be no worse
    #: than the incumbent on held-out feedback.  The fleet's validation
    #: rounds are short, so the holdout threshold is low by default.
    canary: CanaryConfig = field(default_factory=lambda: CanaryConfig(
        holdout_fraction=0.5, min_holdout=2
    ))
    drift: DriftConfig = field(default_factory=DriftConfig)
    #: Serving-front-end limits (queue depth, coalescing, deadlines,
    #: breaker thresholds) applied to every project gateway.
    gateway: GatewayConfig = field(default_factory=GatewayConfig)
    #: Where per-project model registries live.  ``None`` keeps each
    #: project's registry in an ephemeral temporary directory.
    registry_root: str | None = None


@dataclass
class ProjectOutcome:
    """What happened to one project during a fleet round."""

    name: str
    filtered_out: bool = False
    failed_rules: list[str] = field(default_factory=list)
    ranker_score: float = 0.0
    selected: bool = False
    validation: ValidationReport | None = None
    deployed: bool = False
    #: Canary verdict when this round replaced (or failed to replace) an
    #: already-deployed incumbent; None on first deployment.
    canary: CanaryReport | None = None
    #: Registry version serving after this round (None if never deployed).
    model_version: int | None = None

    @property
    def status(self) -> str:
        if self.filtered_out:
            return f"filtered ({','.join(self.failed_rules)})"
        if not self.selected:
            return "ranked-out"
        if self.deployed:
            assert self.validation is not None
            version = f" v{self.model_version}" if self.model_version else ""
            return f"deployed{version} ({self.validation.improvement:+.1%})"
        if self.canary is not None and not self.canary.passed:
            return f"canary-{self.canary.decision}"
        if self.validation is not None:
            return f"rejected ({self.validation.improvement:+.1%})"
        return "selected"


@dataclass
class FleetReport:
    """Outcome of one round over the whole fleet."""

    outcomes: list[ProjectOutcome]

    @property
    def pass_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return float(np.mean([not o.filtered_out for o in self.outcomes]))

    @property
    def deployed_projects(self) -> list[str]:
        return [o.name for o in self.outcomes if o.deployed]

    def outcome(self, name: str) -> ProjectOutcome:
        for candidate in self.outcomes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no outcome recorded for project {name!r}")


class FleetManager:
    """Runs the Filter → Rank → Train → Validate → Deploy loop."""

    def __init__(
        self,
        config: DeploymentConfig | None = None,
        *,
        ranker: ProjectRanker | None = None,
    ) -> None:
        self.config = config or DeploymentConfig()
        self.filter = ProjectFilter(self.config.filter)
        self.ranker = ranker or ProjectRanker()
        self.deployed: dict[str, LOAM] = {}
        #: Per-project model lifecycle (registry + feedback + drift + canary);
        #: created on a project's first validated deployment.
        self.lifecycles: dict[str, ModelLifecycle] = {}
        #: Per-project serving gateway — the fleet's single entry point for
        #: online cost requests (:meth:`steer`); created lazily alongside
        #: the lifecycle and usable before any model is promoted (requests
        #: answer from the native fallback, flagged ``"no-model"``).
        self.gateways: dict[str, OptimizerGateway] = {}
        # The Ranker's growing training pool: (plan, catalog, cost, D(M_d)).
        self._ranker_pool: list[tuple[PhysicalPlan, object, float, float]] = []

    def lifecycle_for(self, name: str) -> ModelLifecycle:
        """The project's lifecycle, created lazily on first use."""
        lifecycle = self.lifecycles.get(name)
        if lifecycle is None:
            root = None
            if self.config.registry_root is not None:
                root = f"{self.config.registry_root}/{name}"
            lifecycle = ModelLifecycle(
                root, drift=self.config.drift, canary=self.config.canary
            )
            self.lifecycles[name] = lifecycle
        return lifecycle

    def gateway_for(self, name: str) -> OptimizerGateway:
        """The project's serving gateway, created lazily over its lifecycle."""
        gateway = self.gateways.get(name)
        if gateway is None:
            gateway = self.lifecycle_for(name).serve_through_gateway(
                config=self.config.gateway
            )
            self.gateways[name] = gateway
        return gateway

    def steer(
        self,
        name: str,
        plans: list[PhysicalPlan],
        *,
        env_features: tuple[float, float, float, float] | None = None,
        deadline_ms: float | None = None,
    ) -> GatewayResult:
        """Online cost scoring for one project's candidate set through its
        gateway — deadline-bounded and guarded, learned when a model is
        deployed and healthy, native fallback otherwise.  The fleet's
        single serving entry point."""
        if env_features is None:
            env_features = self.lifecycle_for(name).environment_features
        return self.gateway_for(name).predict(
            plans, env_features=env_features, deadline_ms=deadline_ms
        )

    def close(self) -> None:
        """Stop every project gateway's worker thread."""
        for gateway in self.gateways.values():
            gateway.close()

    # -- ranker bootstrap / feedback ------------------------------------------

    def seed_ranker(self, workloads: list[ProjectWorkload], *, sample_day: int = 0) -> int:
        """Bootstrap the Ranker from measured improvement spaces on a few
        projects (the paper trains across multiple projects first)."""
        for workload in workloads:
            self._collect_ranker_examples(workload, sample_day=sample_day)
        self._refit_ranker()
        return len(self._ranker_pool)

    def _collect_ranker_examples(self, workload: ProjectWorkload, *, sample_day: int) -> None:
        explorer = PlanExplorer(workload.optimizer)
        flighting = workload.flighting(seed_key="fleet-ranker")
        estimator = DevianceEstimator(n_samples=self.config.deviance_samples, n_grid=768)
        for _ in range(self.config.ranker_queries_per_project):
            query = workload.sample_query(sample_day)
            plans = explorer.candidates(query, top_k=4)
            if len(plans) < 2:
                continue
            samples = [flighting.sample_costs(p, estimator.n_samples) for p in plans]
            report = estimator.report_from_samples(samples)
            d_index = next(i for i, p in enumerate(plans) if p.is_default)
            self._ranker_pool.append(
                (
                    plans[d_index],
                    workload.catalog,
                    float(samples[d_index].mean()),
                    report.improvement_space(d_index),
                )
            )

    def _refit_ranker(self) -> None:
        if not self._ranker_pool:
            raise RuntimeError("Ranker pool is empty; call seed_ranker first")
        plans, catalogs, costs, spaces = zip(*self._ranker_pool)
        self.ranker.fit(list(plans), list(catalogs), list(costs), list(spaces))

    # -- the round -----------------------------------------------------------------

    def run_round(
        self,
        fleet: list[ProjectWorkload],
        *,
        sample_day: int = 0,
        validation_day: int | None = None,
        horizon_day: int | None = None,
    ) -> FleetReport:
        """One full selection/deployment round over ``fleet``.

        ``horizon_day`` is "today" for table-lifespan purposes (rule R3);
        pass the project's true age when the simulated history is shorter
        than the R3 lifespan threshold.
        """
        if not self._ranker_pool:
            raise RuntimeError("seed_ranker must run before the first round")
        outcomes = {w.profile.name: ProjectOutcome(name=w.profile.name) for w in fleet}

        # Stage 1: rule-based filter.
        survivors: list[ProjectWorkload] = []
        for workload in fleet:
            decision = self.filter.evaluate(
                workload.repository.records, workload.catalog, horizon_day=horizon_day
            )
            outcome = outcomes[workload.profile.name]
            if decision.passed:
                survivors.append(workload)
            else:
                outcome.filtered_out = True
                outcome.failed_rules = decision.failed_rules

        # Stage 2: learned ranking by estimated improvement space.
        scores: dict[str, float] = {}
        by_name = {w.profile.name: w for w in survivors}
        for workload in survivors:
            sample = workload.repository.deduplicated()[-20:]
            if not sample:
                scores[workload.profile.name] = 0.0
                continue
            scores[workload.profile.name] = self.ranker.score_project(
                [r.plan for r in sample],
                workload.catalog,
                [r.cpu_cost for r in sample],
            )
        ranking = self.ranker.rank_projects(scores)
        selected = ranking[: self.config.top_n]
        for name, score in scores.items():
            outcomes[name].ranker_score = score
            outcomes[name].selected = name in selected

        # Stages 3-5: train, validate, deploy through the model lifecycle,
        # feed the ranker.
        for name in selected:
            workload = by_name[name]
            loam = LOAM(workload, self.config.loam)
            loam.train()
            day = validation_day if validation_day is not None else sample_day
            queries = [
                workload.sample_query(day) for _ in range(self.config.validation_queries)
            ]
            validation = loam.validate(queries)
            outcome = outcomes[name]
            outcome.validation = validation
            if validation.suitable_for_production(
                min_improvement=self.config.min_validated_improvement
            ):
                self._deploy_through_lifecycle(name, loam, validation, day, outcome)
            # Feedback: validation produced fresh default-plan measurements.
            self._collect_ranker_examples(workload, sample_day=day)
        self._refit_ranker()
        return FleetReport(outcomes=list(outcomes.values()))

    def _deploy_through_lifecycle(
        self,
        name: str,
        loam: LOAM,
        validation: ValidationReport,
        day: int,
        outcome: ProjectOutcome,
    ) -> None:
        """Guarded rollout of a validated model (Section 6's closing loop).

        The first validated model bootstraps the project's registry; every
        later round's retrain is a *candidate* that must clear the canary
        gate against the live incumbent on held-out feedback before the
        hot swap.  A rejected candidate is registered unpromoted and the
        incumbent keeps serving (fallback semantics).
        """
        lifecycle = self.lifecycle_for(name)
        env = loam.environment.features()
        records = loam.workload.repository.deduplicated()
        fingerprint = training_data_fingerprint(
            [r.plan for r in records], [r.cpu_cost for r in records]
        )
        metrics = {
            "validated_improvement": validation.improvement,
            "n_validation_queries": validation.n_queries,
        }
        # Validation's executed-plan outcomes feed the lifecycle log first,
        # so the canary judges the candidate on fresh measurements too.
        for plan, predicted, observed in validation.feedback:
            lifecycle.feedback.record(
                plan,
                predicted,
                observed,
                env_features=env,
                day=day,
                model_version=lifecycle.current_version.version
                if lifecycle.current_version
                else 0,
            )
        report, entry = lifecycle.submit_candidate(
            loam.predictor,
            environment_features=env,
            training_fingerprint=fingerprint,
            metrics=metrics,
        )
        if report.decision != "bootstrap":
            outcome.canary = report
        if report.passed:
            assert entry is not None
            outcome.deployed = True
            outcome.model_version = entry.version
            self.deployed[name] = loam
