"""Optimizer gateway: the concurrent, guarded serving front end.

The single entry point production traffic takes to the learned cost model
(docs/GATEWAY.md): bounded admission, micro-batch coalescing, per-request
deadline budgets, a per-model-version circuit breaker, a deterministic
native-cost fallback, and built-in telemetry.
"""

from repro.gateway.breaker import BreakerConfig, BreakerOpenError, CircuitBreaker
from repro.gateway.fallback import NativeCostFallback, environment_factor_from_features
from repro.gateway.gateway import (
    GatewayClosedError,
    GatewayConfig,
    GatewayResult,
    OptimizerGateway,
)
from repro.gateway.telemetry import Counter, Gauge, Histogram, Telemetry

__all__ = [
    "BreakerConfig",
    "BreakerOpenError",
    "CircuitBreaker",
    "Counter",
    "Gauge",
    "GatewayClosedError",
    "GatewayConfig",
    "GatewayResult",
    "Histogram",
    "NativeCostFallback",
    "OptimizerGateway",
    "Telemetry",
    "environment_factor_from_features",
]
