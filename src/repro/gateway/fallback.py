"""The deterministic answer the gateway gives when the learned path can't.

Bao's production rule, transplanted: a learned optimizer component must
always be able to hand the decision back to the native optimizer.  Here
the native answer is the warehouse's statistics-free cost model — the same
``intrinsic_plan_cost`` over the optimizer's ``est_rows`` annotations that
``NativeOptimizer.estimated_cost`` ranks plans with — so a fallback
response is exactly what the unsteered optimizer would have said, computed
in pure Python with no model weights, no caches, and no shared mutable
state.  That makes it safe to call synchronously from any number of
request threads while the learned path is timing out, erroring, or
circuit-broken.

When the caller supplies an environment override, the estimate is scaled
by the executor's linear load-slowdown form (``ENV_SENSITIVITY``) so
fallback costs remain monotone in cluster load and comparable across
environments — candidate *ranking* is unchanged (the factor is shared by
every plan in a request), but absolute values stay in the same regime the
learned model reports.
"""

from __future__ import annotations

import numpy as np

from repro.warehouse.costmodel import COST, CostConstants, intrinsic_plan_cost
from repro.warehouse.executor import ENV_SENSITIVITY
from repro.warehouse.plan import PhysicalPlan

__all__ = ["NativeCostFallback", "environment_factor_from_features"]


def environment_factor_from_features(
    env_features: tuple[float, float, float, float],
) -> float:
    """The executor's load-slowdown factor from already-normalized features
    ``(cpu_idle, io_wait, load5_norm, mem_usage)`` (cf.
    :func:`repro.warehouse.executor.environment_cost_factor`, which takes a
    raw :class:`EnvironmentSample` instead)."""
    cpu_idle, io_wait, load5_norm, mem_usage = (float(v) for v in env_features)
    a_busy, a_io, a_load, a_mem = ENV_SENSITIVITY
    return (
        1.0
        + a_busy * (1.0 - cpu_idle)
        + a_io * io_wait
        + a_load * load5_norm
        + a_mem * mem_usage
    )


class NativeCostFallback:
    """Statistics-free baseline cost scoring with the learned path's call
    contract (``predict(plans, env_features=...)`` → float64 array).

    Plans must carry ``est_rows`` annotations, which every plan produced by
    :class:`~repro.warehouse.optimizer.NativeOptimizer` (and every clone of
    one) does.  Scoring is deterministic and side-effect free.
    """

    def __init__(
        self,
        *,
        constants: CostConstants = COST,
        use_environment: bool = True,
    ) -> None:
        self.constants = constants
        self.use_environment = use_environment

    def predict(
        self,
        plans: list[PhysicalPlan],
        *,
        env_features: tuple[float, float, float, float] | None = None,
    ) -> np.ndarray:
        costs = np.array(
            [
                intrinsic_plan_cost(p.root, field="est_rows", constants=self.constants)
                for p in plans
            ],
            dtype=np.float64,
        )
        if env_features is not None and self.use_environment:
            costs *= environment_factor_from_features(env_features)
        return costs

    def select_best_index(
        self,
        plans: list[PhysicalPlan],
        *,
        env_features: tuple[float, float, float, float] | None = None,
    ) -> tuple[int, np.ndarray]:
        if not plans:
            raise ValueError("select_best_index on an empty candidate list")
        predictions = self.predict(plans, env_features=env_features)
        return int(np.argmin(predictions)), predictions
