"""Per-model-version circuit breaker for the learned serving path.

Classic three-state breaker (closed → open → half-open) over a rolling
outcome window:

* **closed** — every request may take the learned path.  Each outcome is
  pushed into a bounded window; when at least ``min_calls`` outcomes exist
  and the failed-or-slow fraction reaches ``failure_rate_threshold``, the
  breaker trips.
* **open** — the learned path is off; callers answer from the fallback
  without queueing.  After ``cooldown_seconds`` the next ``allow`` call
  moves the breaker to half-open.
* **half-open** — up to ``half_open_probes`` probe requests may take the
  learned path.  ``half_open_probes`` consecutive successes close the
  breaker (window cleared: the new-or-recovered model starts with a clean
  record); any failure re-opens it and restarts the cooldown.

"Slow" outcomes count toward the trip the same way errors do — a learned
path that answers correctly but blows its deadline budget is just as
unusable online (the paper's guardrail stance: never let the learned
component hold the optimizer hostage).  ``reset`` returns to closed
unconditionally; the gateway calls it on every ``swap_predictor`` so a
freshly promoted model is never punished for its predecessor's record.

The clock is injectable (monotonic seconds) so trip/cooldown/probe
transitions are unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

__all__ = ["BreakerConfig", "BreakerOpenError", "CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class BreakerOpenError(RuntimeError):
    """Raised by :meth:`CircuitBreaker.check` when the learned path is off."""


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery thresholds (documented in docs/GATEWAY.md)."""

    #: Rolling outcome window evaluated for the trip decision.
    window: int = 32
    #: No trip below this many recorded outcomes (cold-start guard).
    min_calls: int = 8
    #: Failed-or-slow fraction of the window that trips the breaker.
    failure_rate_threshold: float = 0.5
    #: Latency above which a *successful* call is still recorded as slow;
    #: ``None`` means only explicit slow marks (deadline misses) count.
    slow_call_seconds: float | None = None
    #: Seconds the breaker stays open before probing.
    cooldown_seconds: float = 30.0
    #: Consecutive probe successes required to close from half-open.
    half_open_probes: int = 3


class CircuitBreaker:
    """Thread-safe breaker guarding one served model version."""

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_trip: Callable[["CircuitBreaker"], None] | None = None,
        on_reset: Callable[["CircuitBreaker"], None] | None = None,
    ) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock
        self.on_trip = on_trip
        self.on_reset = on_reset
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)  # True == bad
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        self.trip_count = 0
        self.failure_count = 0
        self.slow_count = 0
        self.success_count = 0

    # -- state ----------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        # An expired cooldown reads as half-open even before the next allow()
        # performs the transition, so observers never see a stale "open".
        if self._state == OPEN and self.clock() - self._opened_at >= self.config.cooldown_seconds:
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the next request take the learned path?  In half-open state
        this *consumes* one probe slot."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self.clock() - self._opened_at < self.config.cooldown_seconds:
                    return False
                self._state = HALF_OPEN
                self._probes_issued = 0
                self._probe_successes = 0
            # half-open: grant a bounded number of in-flight probes.
            if self._probes_issued < self.config.half_open_probes:
                self._probes_issued += 1
                return True
            return False

    def check(self) -> None:
        """``allow`` in exception form (for call sites without a fallback)."""
        if not self.allow():
            raise BreakerOpenError("circuit breaker is open: learned path disabled")

    # -- outcomes -------------------------------------------------------------

    def record_success(self, latency_seconds: float | None = None) -> None:
        slow = (
            self.config.slow_call_seconds is not None
            and latency_seconds is not None
            and latency_seconds > self.config.slow_call_seconds
        )
        tripped = False
        with self._lock:
            self.success_count += 1
            if slow:
                self.slow_count += 1
            if self._state == HALF_OPEN:
                if slow:
                    tripped = self._trip_locked()
                else:
                    self._probe_successes += 1
                    if self._probe_successes >= self.config.half_open_probes:
                        self._close_locked()
            elif self._state == CLOSED:
                self._outcomes.append(slow)
                tripped = self._evaluate_locked()
            # open: stale outcome from before the trip; the window is gone.
        if tripped and self.on_trip is not None:
            self.on_trip(self)

    def record_failure(self, *, kind: str = "error") -> None:
        """Record a learned-path failure; ``kind`` is ``"error"`` (raised) or
        ``"slow"`` (deadline budget missed)."""
        tripped = False
        with self._lock:
            if kind == "slow":
                self.slow_count += 1
            else:
                self.failure_count += 1
            if self._state == HALF_OPEN:
                tripped = self._trip_locked()
            elif self._state == CLOSED:
                self._outcomes.append(True)
                tripped = self._evaluate_locked()
        if tripped and self.on_trip is not None:
            self.on_trip(self)

    def _evaluate_locked(self) -> bool:
        outcomes = self._outcomes
        if len(outcomes) < self.config.min_calls:
            return False
        if sum(outcomes) / len(outcomes) >= self.config.failure_rate_threshold:
            return self._trip_locked()
        return False

    def _trip_locked(self) -> bool:
        self._state = OPEN
        self._opened_at = self.clock()
        self.trip_count += 1
        self._outcomes.clear()
        return True

    def _close_locked(self) -> None:
        self._state = CLOSED
        self._outcomes.clear()
        self._probes_issued = 0
        self._probe_successes = 0

    def release_probe(self) -> None:
        """Return an unused half-open probe slot (the gateway grants a probe
        at admission; if the request is then shed before reaching the
        learned path, the slot must not leak or half-open could stall)."""
        with self._lock:
            if self._state == HALF_OPEN and self._probes_issued > 0:
                self._probes_issued -= 1

    def reset(self) -> None:
        """Unconditionally close (the ``swap_predictor`` hook): a new model
        version starts with a clean record."""
        with self._lock:
            self._close_locked()
        if self.on_reset is not None:
            self.on_reset(self)

    # -- reporting ------------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "trip_count": self.trip_count,
                "success_count": self.success_count,
                "failure_count": self.failure_count,
                "slow_count": self.slow_count,
                "window_filled": len(self._outcomes),
            }
