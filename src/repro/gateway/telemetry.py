"""Thread-safe telemetry core for the serving front end.

Three instrument kinds, one registry:

* :class:`Counter` — monotonically increasing totals (requests served,
  fallbacks by reason, breaker trips);
* :class:`Gauge` — point-in-time values (queue depth, breaker state,
  serving-cache hit counters mirrored from the inference service);
* :class:`Histogram` — latency/size distributions with p50/p95/p99 read
  from a bounded reservoir of recent observations, plus exact
  count/sum/min/max over the full lifetime.

A :class:`Telemetry` registry creates instruments on first use (get-or-
create, so instrumented code never needs registration boilerplate), times
code blocks via :meth:`Telemetry.span`, and exports everything as a JSON
document or Prometheus text exposition (counters, gauges, and summaries
with quantile labels).  All instruments are safe to update from multiple
threads; exports take a consistent per-instrument snapshot.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SHED_REASONS",
    "Telemetry",
    "escape_label_value",
    "escape_help_text",
]

#: Quantiles reported for every histogram, in export order.
QUANTILES = (0.50, 0.95, 0.99)

#: The admission decisions that count as *shedding* — refusing a request
#: the learned path will never see, for load (not health) reasons.  Each
#: gets its own counter so dashboards can tell a full queue from a pacing
#: refusal from a blown budget from a shutdown refusal.
SHED_REASONS = ("queue-full", "pacer-limit", "deadline", "closed")


def _sanitize(name: str) -> str:
    """Prometheus metric names allow ``[a-zA-Z0-9_:]`` only."""
    return "".join(c if c.isalnum() or c in "_:" else "_" for c in name)


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and line-feed must be backslash-escaped."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def escape_help_text(text: str) -> str:
    """HELP lines escape backslash and line-feed (quotes are legal there)."""
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Lifetime count/sum/min/max plus quantiles over a recent reservoir.

    The reservoir is a bounded FIFO window (not a decaying sample): p50/p95/
    p99 describe the last ``window`` observations, which is what an operator
    watching a serving dashboard wants — current behaviour, not the average
    over a process lifetime that may span several model versions.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", *, window: int = 2048) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._nonfinite = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            # A single NaN would poison mean/sum forever and an inf would
            # pin max/quantiles; drop it but keep the evidence countable.
            with self._lock:
                self._nonfinite += 1
            return
        with self._lock:
            self._window.append(value)
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def nonfinite(self) -> int:
        """Observations rejected for being NaN/inf."""
        with self._lock:
            return self._nonfinite

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (nearest-rank) of the recent window; 0.0 when
        nothing has been observed."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._window:
                return 0.0
            ordered = sorted(self._window)
        return ordered[int(q * (len(ordered) - 1))]

    def snapshot(self, *, include_samples: bool = False) -> dict:
        """Summary statistics; with ``include_samples`` the raw reservoir
        window rides along under ``"samples"`` so a downstream merge (the
        fleet's :func:`repro.fleet.telemetry.merge_snapshots`) can compute
        *exact* cross-shard quantiles instead of a max bound."""
        with self._lock:
            window = sorted(self._window)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
            nonfinite = self._nonfinite
        quantiles = {
            f"p{int(q * 100)}": (window[int(q * (len(window) - 1))] if window else 0.0)
            for q in QUANTILES
        }
        out = {
            "count": count,
            "sum": total,
            "min": lo if count else 0.0,
            "max": hi if count else 0.0,
            "mean": total / count if count else 0.0,
            "nonfinite": nonfinite,
            **quantiles,
        }
        if include_samples:
            out["samples"] = window
        return out


class Telemetry:
    """Get-or-create instrument registry with JSON and Prometheus export."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = _sanitize(namespace)
        self._lock = threading.Lock()
        self._instruments: "OrderedDict[str, Counter | Gauge | Histogram]" = OrderedDict()

    # -- instrument access ----------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"telemetry name {name!r} is a {instrument.kind}, "
                    f"requested {cls.__name__.lower()}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "", *, window: int = 2048) -> Histogram:
        return self._get_or_create(Histogram, name, help, window=window)

    def record_shed(self, reason: str) -> None:
        """Count one shed admission decision, split by reason.

        ``sheds_total`` aggregates; ``shed_<reason>_total`` (one counter
        per :data:`SHED_REASONS` entry) attributes it, so the queue-full /
        pacer-limit / deadline / closed split is visible in both the JSON
        and Prometheus exports without callers managing counter names.
        """
        if reason not in SHED_REASONS:
            raise ValueError(
                f"unknown shed reason {reason!r}; expected one of {SHED_REASONS}"
            )
        self.counter("sheds_total", "requests shed at admission, all reasons").inc()
        self.counter(
            f"shed_{reason.replace('-', '_')}_total", f"requests shed: {reason}"
        ).inc()

    @contextmanager
    def span(self, name: str):
        """Time a code block: ``<name>_total`` counts entries and
        ``<name>_seconds`` records the duration histogram."""
        counter = self.counter(f"{name}_total", f"entries into span {name}")
        histogram = self.histogram(f"{name}_seconds", f"duration of span {name}")
        started = time.perf_counter()
        try:
            yield
        finally:
            histogram.observe(time.perf_counter() - started)
            counter.inc()

    # -- export ---------------------------------------------------------------

    def snapshot(self, *, include_samples: bool = False) -> dict:
        """One consistent-enough JSON-able view of every instrument.
        ``include_samples`` forwards to every histogram (raw reservoirs for
        exact downstream merging)."""
        with self._lock:
            instruments = list(self._instruments.values())
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                snap = instrument.snapshot(include_samples=include_samples)
            else:
                snap = instrument.snapshot()
            out[f"{instrument.kind}s"][instrument.name] = snap
        return out

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition: counters as ``_total``-suffixed
        counters, gauges verbatim, histograms as summaries with quantile
        labels plus ``_count``/``_sum``."""
        with self._lock:
            instruments = list(self._instruments.values())
        lines: list[str] = []
        for instrument in instruments:
            metric = f"{self.namespace}_{_sanitize(instrument.name)}"
            if instrument.help:
                lines.append(f"# HELP {metric} {escape_help_text(instrument.help)}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {instrument.value:.10g}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {instrument.value:.10g}")
            else:
                snap = instrument.snapshot()
                lines.append(f"# TYPE {metric} summary")
                for q in QUANTILES:
                    value = snap[f"p{int(q * 100)}"]
                    label = escape_label_value(f"{q:g}")
                    lines.append(f'{metric}{{quantile="{label}"}} {value:.10g}')
                lines.append(f"{metric}_sum {snap['sum']:.10g}")
                lines.append(f"{metric}_count {snap['count']}")
        return "\n".join(lines) + "\n"
