"""The optimizer gateway: a concurrent, deadline-bounded serving front end.

:class:`~repro.serving.service.CostInferenceService` is a deliberately
single-threaded fast path (its batch buffers are recycled per request).
Production steering traffic is the opposite shape: many query compilers
asking concurrently, each inside its own optimizer latency budget, against
a learned model that can be slow, broken, or mid-replacement.  The
:class:`OptimizerGateway` closes that gap:

* **admission control** — a bounded request queue; when it is full the
  request is *shed* and answered from the fallback immediately instead of
  growing an unbounded backlog;
* **micro-batch coalescing** — one worker thread drains the queue, merging
  compatible requests (same environment override) into a single learned
  batch within a small linger window, so concurrent callers ride the
  serving layer's size-bucketed batching instead of serializing one
  candidate set at a time;
* **deadline budgets** — every request carries a deadline; a caller whose
  budget expires answers from the fallback *immediately* (it never blocks
  on the learned path), and the miss is recorded against the breaker as a
  slow call;
* **circuit breaker** — per served model version (reset on every
  ``swap_predictor``): repeated errors or deadline misses trip it, open
  state answers straight from the fallback without queueing, and a
  half-open probe sequence decides recovery (:mod:`repro.gateway.breaker`);
* **deterministic fallback** — the statistics-free native cost model
  (:mod:`repro.gateway.fallback`); every response is flagged with its
  source and reason, so callers and dashboards can tell a learned answer
  from a guardrail answer;
* **telemetry** — counters, gauges, and latency histograms for every
  decision point, exported as JSON or Prometheus text
  (:mod:`repro.gateway.telemetry`), including the inference service's
  cache-tier hit/miss/eviction counters.

Every request is answered with a cost vector, whatever happens to the
learned path — the gateway's one invariant.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.gateway.breaker import BreakerConfig, CircuitBreaker
from repro.gateway.fallback import NativeCostFallback
from repro.gateway.telemetry import Telemetry
from repro.obs.trace import NULL_SPAN, activate_span
from repro.pacing import AdmissionPacer, PacerConfig

__all__ = ["GatewayClosedError", "GatewayConfig", "GatewayResult", "OptimizerGateway"]


class GatewayClosedError(RuntimeError):
    """Marks a request that was drained because the gateway shut down; the
    waiting caller answers it from the fallback with reason ``"closed"``."""

#: Breaker-state gauge encoding (``breaker_state`` telemetry gauge).
_BREAKER_STATE_CODES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


@dataclass(frozen=True)
class GatewayConfig:
    """Operating limits of the serving front end."""

    #: Pending requests admitted before load shedding kicks in.
    max_queue_depth: int = 64
    #: Upper bound on plans merged into one learned batch.
    max_coalesce_plans: int = 256
    #: How long the worker lingers for more compatible requests once it has
    #: one in hand.  Zero (the default) coalesces only what is already
    #: queued — concurrent bursts still merge, because requests pile up
    #: while the previous batch executes; a nonzero window additionally
    #: catches near-simultaneous arrivals, at the cost of adding the full
    #: window to every idle-path request.
    coalesce_window_ms: float = 0.0
    #: Deadline applied when the caller does not pass one.  ``None`` means
    #: requests without an explicit deadline wait for the learned answer.
    default_deadline_ms: float | None = None
    #: Circuit-breaker thresholds for the learned path.
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    #: BBR-style admission pacing (:mod:`repro.pacing`); ``None`` (the
    #: default) disables pacing and overload handling falls back to the
    #: blunt bounded queue alone.  With a config set, requests past the
    #: pacer's BDP-derived inflight cap shed immediately with reason
    #: ``"pacer-limit"`` instead of queueing into latency their deadline
    #: budget cannot afford.
    pacer: PacerConfig | None = None


class GatewayResult:
    """One answered request: a cost vector plus how it was produced.

    Acts as an array (``np.argmin(result)``, ``len``, iteration, indexing
    all read ``costs``) so it is a drop-in for the raw prediction vectors
    the serving layer returns.
    """

    __slots__ = (
        "costs", "source", "reason", "latency_ms", "model_version", "retry_after",
        "trace_id",
    )

    def __init__(
        self,
        costs: np.ndarray,
        source: str,
        reason: str,
        latency_ms: float,
        model_version: int | None,
        *,
        retry_after: float | None = None,
        trace_id: str | None = None,
    ) -> None:
        self.costs = costs
        self.source = source  # "learned" | "fallback"
        self.reason = reason  # "ok" | "no-model" | "shed" | "deadline" | ...
        self.latency_ms = latency_ms
        self.model_version = model_version
        #: ``pacer-limit`` sheds only: the pacer's estimate of seconds until
        #: an admission would succeed (HTTP Retry-After analogue).  ``None``
        #: everywhere else, and on sheds from an unmeasured pacer.
        self.retry_after = retry_after
        #: Id of the distributed trace this request was sampled into, or
        #: ``None`` when tracing is off/unsampled.  Feed it to the owning
        #: fleet's ``span_tree`` to reconstruct the request end to end.
        self.trace_id = trace_id

    @property
    def fallback(self) -> bool:
        return self.source == "fallback"

    def __array__(self, dtype=None, copy=None):
        return np.asarray(self.costs, dtype=dtype)

    def __len__(self) -> int:
        return len(self.costs)

    def __iter__(self):
        return iter(self.costs)

    def __getitem__(self, index):
        return self.costs[index]

    def __repr__(self) -> str:
        return (
            f"GatewayResult({self.source}/{self.reason}, n={len(self.costs)}, "
            f"latency={self.latency_ms:.2f}ms)"
        )


class _PendingRequest:
    """One caller's unit of work, parked on the queue until the worker
    batches it (or the caller's deadline abandons it)."""

    __slots__ = (
        "plans", "env_features", "env_key", "deadline", "enqueued_at",
        "event", "result", "error", "abandoned", "done", "paced", "span",
    )

    def __init__(self, plans, env_features, env_key, deadline, now) -> None:
        self.plans = plans
        self.env_features = env_features
        self.env_key = env_key
        self.deadline = deadline  # absolute monotonic seconds, or None
        self.enqueued_at = now
        self.event = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        self.abandoned = False
        self.done = False
        #: True while this request holds one of the admission pacer's
        #: inflight slots (cleared exactly once, under the gateway lock).
        self.paced = False
        #: The request's trace span (NULL_SPAN when unsampled); the worker
        #: reads it to parent the batch span.
        self.span = NULL_SPAN


class OptimizerGateway:
    """Concurrent serving front end over one inference service.

    ``service`` may be ``None`` (a project before its first promoted model):
    every request answers from the fallback with reason ``"no-model"`` until
    :meth:`attach_service` installs the learned path.  ``service`` is
    duck-typed — it must expose ``predict(plans, env_features=...)`` and may
    expose ``swap_predictor``, ``cache_counters`` and a ``predictor`` with a
    ``weights_version`` counter.
    """

    def __init__(
        self,
        service=None,
        *,
        fallback: NativeCostFallback | None = None,
        config: GatewayConfig | None = None,
        breaker: CircuitBreaker | None = None,
        telemetry: Telemetry | None = None,
        on_trip=None,
        pacer: AdmissionPacer | None = None,
        tracer=None,
        recorder=None,
        slo=None,
    ) -> None:
        self.config = config or GatewayConfig()
        self.fallback = fallback or NativeCostFallback()
        self.telemetry = telemetry or Telemetry()
        self._on_trip = on_trip
        #: Observability (all optional, all ~free when absent): a
        #: :class:`repro.obs.Tracer` minting request spans at admission, a
        #: :class:`repro.obs.FlightRecorder` fed incident events (breaker
        #: trips auto-dump; sheds feed its storm detector), and a
        #: :class:`repro.obs.SLOMonitor` fed every finished request.
        self.tracer = tracer
        self.recorder = recorder
        self.slo = slo
        self.breaker = breaker or CircuitBreaker(self.config.breaker)
        if pacer is None and self.config.pacer is not None:
            pacer = AdmissionPacer(self.config.pacer)
        self.pacer = pacer
        if self.pacer is not None and self.pacer.telemetry is None:
            self.pacer.telemetry = self.telemetry
        # Chain, don't clobber: a caller-provided breaker may carry its own
        # trip hook; the gateway adds telemetry + the lifecycle signal.
        self._user_breaker_trip = self.breaker.on_trip
        self.breaker.on_trip = self._breaker_tripped
        # A breaker reset means the learned path changed (hot swap) or just
        # recovered from a broken spell — either way the pacer's capacity
        # estimates describe a path that no longer exists: re-probe from
        # STARTUP.
        self._user_breaker_reset = self.breaker.on_reset
        self.breaker.on_reset = self._breaker_reset
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: deque[_PendingRequest] = deque()
        #: Requests the worker has popped but not yet answered — tracked so
        #: :meth:`close` can fail them over to the fallback if the worker is
        #: stuck in the learned path past the join timeout.
        self._inflight: list[_PendingRequest] = []
        self._service = service
        self._service_lock = threading.Lock()
        self._fault_budget = 0
        self._fault_error: BaseException | None = None
        self._running = True
        self._worker = threading.Thread(
            target=self._worker_loop, name="optimizer-gateway", daemon=True
        )
        self._worker.start()

    # -- service management ----------------------------------------------------

    @property
    def service(self):
        return self._service

    @property
    def has_model(self) -> bool:
        return self._service is not None

    def attach_service(self, service) -> None:
        """Install (or replace) the learned path; resets the breaker."""
        with self._service_lock:
            self._service = service
        self.notify_swap()

    def swap_predictor(self, predictor) -> None:
        """Hot-swap the served model through the inference service and reset
        the breaker (a promoted model starts with a clean record)."""
        if self._service is None:
            raise RuntimeError("gateway has no inference service to swap into")
        with self._service_lock:
            self._service.swap_predictor(predictor)
        self.notify_swap()

    def notify_swap(self) -> None:
        """Called after the underlying service's model changed (directly or
        via the lifecycle's promote path): clean breaker, fresh gauges."""
        self.breaker.reset()
        self.telemetry.counter("swaps_total", "model hot swaps observed").inc()
        self._sync_gauges()

    def _model_version(self) -> int | None:
        service = self._service
        if service is None:
            return None
        return getattr(getattr(service, "predictor", None), "weights_version", None)

    # -- request path ----------------------------------------------------------

    def predict(
        self,
        plans,
        *,
        env_features: tuple[float, float, float, float] | None = None,
        deadline_ms: float | None = None,
        trace=None,
    ) -> GatewayResult:
        """Score ``plans`` within the deadline budget.  Always returns a
        cost per plan; ``result.source`` says whether the learned model or
        the native fallback produced it.  ``trace`` carries an upstream
        :class:`~repro.obs.TraceContext` (e.g. from the fleet parent) so the
        request span joins the caller's trace instead of starting one."""
        started = time.monotonic()
        self.telemetry.counter("requests_total", "requests received").inc()
        self.telemetry.counter("plans_total", "plans scored").inc(len(plans))
        span = (
            self.tracer.start_trace("gateway.request", parent=trace)
            if self.tracer is not None
            else NULL_SPAN
        )
        if span.sampled:
            span.set_attrs(n_plans=len(plans))
        if not len(plans):
            return self._finish(
                GatewayResult(np.zeros(0), "learned", "ok", 0.0, self._model_version()),
                started,
                span=span,
            )
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms

        if self._service is None:
            return self._fallback_result(plans, env_features, "no-model", started, span=span)
        if not self.breaker.allow():
            return self._fallback_result(
                plans, env_features, "circuit-open", started, span=span
            )
        if self.pacer is not None and not self.pacer.try_admit():
            # The pipe (plus its state-dependent headroom) is already full:
            # queueing this request would only buy it latency, not an
            # answer in budget.  Shed at admission, BBR-style, with a
            # Retry-After hint from the pacer's own schedule.
            self.breaker.release_probe()
            return self._fallback_result(
                plans,
                env_features,
                "pacer-limit",
                started,
                retry_after=self.pacer.next_admit_eta(),
                span=span,
            )

        env_key = (
            tuple(float(v) for v in env_features) if env_features is not None else None
        )
        deadline = started + deadline_ms / 1e3 if deadline_ms is not None else None
        request = _PendingRequest(list(plans), env_features, env_key, deadline, started)
        request.paced = self.pacer is not None
        request.span = span

        with self._work:
            if not self._running:
                closed = True
                shed = False
            elif len(self._queue) >= self.config.max_queue_depth:
                closed = False
                shed = True
            else:
                closed = shed = False
                self._queue.append(request)
                self.telemetry.gauge("queue_depth", "pending requests").set(
                    len(self._queue)
                )
                self._work.notify()
        if closed:
            self.breaker.release_probe()
            self._pacer_release(request)
            return self._fallback_result(plans, env_features, "closed", started, span=span)
        if shed:
            self.breaker.release_probe()
            self._pacer_release(request)
            return self._fallback_result(plans, env_features, "shed", started, span=span)

        timeout = deadline - time.monotonic() if deadline is not None else None
        if timeout is not None and timeout > 0:
            request.event.wait(timeout)
        elif timeout is None:
            request.event.wait()
        # else: budget already exhausted by admission; fall through.

        with self._lock:
            done, error = request.done, request.error
            if not done:
                request.abandoned = True
        if done and error is None:
            assert request.result is not None
            return self._finish(
                GatewayResult(
                    request.result,
                    "learned",
                    "ok",
                    1e3 * (time.monotonic() - started),
                    self._model_version(),
                ),
                started,
                span=span,
            )
        if done:
            reason = "closed" if isinstance(error, GatewayClosedError) else "model-error"
            return self._fallback_result(plans, env_features, reason, started, span=span)
        self.telemetry.counter("deadline_miss_total", "requests past budget").inc()
        return self._fallback_result(plans, env_features, "deadline", started, span=span)

    def select_best_index(
        self,
        plans,
        *,
        env_features: tuple[float, float, float, float] | None = None,
        deadline_ms: float | None = None,
    ) -> tuple[int, np.ndarray]:
        """The steering decision with the serving layer's contract: the
        winning candidate index plus the full prediction vector."""
        if not len(plans):
            raise ValueError("select_best_index on an empty candidate list")
        result = self.predict(plans, env_features=env_features, deadline_ms=deadline_ms)
        return int(np.argmin(result.costs)), result.costs

    def select_best(
        self,
        plans,
        *,
        env_features: tuple[float, float, float, float] | None = None,
        deadline_ms: float | None = None,
    ):
        index, predictions = self.select_best_index(
            plans, env_features=env_features, deadline_ms=deadline_ms
        )
        return plans[index], predictions

    # -- fallback + bookkeeping ------------------------------------------------

    #: Fallback reasons that are *shed* decisions (load-based refusals of a
    #: healthy path), mapped onto the telemetry split in
    #: :data:`repro.gateway.telemetry.SHED_REASONS`.  ``no-model`` /
    #: ``circuit-open`` / ``model-error`` are health events, not sheds.
    _SHED_REASONS = {
        "shed": "queue-full",
        "pacer-limit": "pacer-limit",
        "deadline": "deadline",
        "closed": "closed",
    }

    def _fallback_result(
        self, plans, env_features, reason, started, *, retry_after=None, span=NULL_SPAN
    ) -> GatewayResult:
        costs = self.fallback.predict(list(plans), env_features=env_features)
        self.telemetry.counter("fallback_total", "requests answered by fallback").inc()
        self.telemetry.counter(
            f"fallback_{reason.replace('-', '_')}_total", f"fallbacks: {reason}"
        ).inc()
        shed_reason = self._SHED_REASONS.get(reason)
        if shed_reason is not None:
            self.telemetry.record_shed(shed_reason)
            if self.recorder is not None:
                self.recorder.note_shed(shed_reason)
        if retry_after is not None:
            self.telemetry.histogram(
                "retry_after_seconds",
                "Retry-After hints attached to pacer-limit sheds",
            ).observe(float(retry_after))
        return self._finish(
            GatewayResult(
                costs,
                "fallback",
                reason,
                1e3 * (time.monotonic() - started),
                None,
                retry_after=retry_after,
            ),
            started,
            span=span,
        )

    def _finish(
        self, result: GatewayResult, started: float, *, span=NULL_SPAN
    ) -> GatewayResult:
        if result.source == "learned":
            self.telemetry.counter("learned_total", "requests answered learned").inc()
        latency = time.monotonic() - started
        self.telemetry.histogram(
            "request_latency_seconds", "end-to-end request latency"
        ).observe(latency)
        if self.slo is not None:
            self.slo.record(latency, deadline_hit=result.reason != "deadline")
        if span.sampled:
            span.set_attrs(
                source=result.source,
                reason=result.reason,
                weights_version=result.model_version,
            )
            shed_reason = self._SHED_REASONS.get(result.reason)
            if shed_reason is not None:
                span.set_attr("shed_reason", shed_reason)
            if result.retry_after is not None:
                span.set_attr("retry_after", result.retry_after)
            if self.pacer is not None:
                span.set_attr("pacer_state", self.pacer.state)
            result.trace_id = span.trace_id
            span.finish()
        return result

    def _breaker_tripped(self, breaker) -> None:
        self.telemetry.counter(
            "breaker_trips_total", "circuit breaker trips"
        ).inc()
        self._sync_gauges()
        if self.recorder is not None:
            # Incident kind: the recorder snapshots its ring so the spans
            # and sheds leading up to the trip survive for reconstruction.
            breaker_stats = breaker.stats()
            self.recorder.record(
                "breaker-trip",
                "gateway",
                weights_version=self._model_version(),
                trip_count=breaker_stats["trip_count"],
                failure_count=breaker_stats["failure_count"],
                slow_count=breaker_stats["slow_count"],
            )
        if self._user_breaker_trip is not None:
            self._user_breaker_trip(breaker)
        if self._on_trip is not None:
            self._on_trip(self)

    def _breaker_reset(self, breaker) -> None:
        """Breaker reset hook: the learned path was swapped or declared
        recovered, so the pacer's capacity estimates are void — re-enter
        STARTUP and re-probe the pipe."""
        if self.pacer is not None:
            self.pacer.reset()
        if self._user_breaker_reset is not None:
            self._user_breaker_reset(breaker)

    def _pacer_release(self, request: _PendingRequest) -> None:
        """Return the request's pacer slot without a delivery sample — for
        requests that never completed a learned batch (shed after
        admission, abandoned, drained, failed).  Idempotent: the ``paced``
        flag is cleared exactly once under the gateway lock."""
        if self.pacer is None:
            return
        with self._lock:
            if not request.paced:
                return
            request.paced = False
        self.pacer.release()

    # -- fault injection (smoke tests / chaos drills) --------------------------

    def inject_faults(self, n: int, error: BaseException | None = None) -> None:
        """Arm the learned path to raise on its next ``n`` batches.  This is
        the supported chaos hook the ``gateway`` smoke CLI and CI use to
        prove the fallback + breaker behaviour without reaching into
        internals."""
        with self._lock:
            self._fault_budget = int(n)
            self._fault_error = error

    # -- worker ----------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while self._running and not self._queue:
                    self._work.wait()
                if not self._running and not self._queue:
                    return
                first = self._queue.popleft()
                self.telemetry.gauge("queue_depth", "pending requests").set(
                    len(self._queue)
                )
                self._observe_queue_wait(first)
                if first.done:
                    # Already answered by a concurrent close() drain.
                    continue
                if first.abandoned:
                    abandoned_early = True
                else:
                    abandoned_early = False
                    self._inflight.append(first)
            if abandoned_early:
                # The caller already answered from the fallback; the learned
                # path failed to schedule it in budget — a slow call.
                self._pacer_release(first)
                self.breaker.record_failure(kind="slow")
                continue
            group = self._coalesce(first)
            try:
                self._execute(group)
            finally:
                with self._lock:
                    self._inflight.clear()

    def _observe_queue_wait(self, request: _PendingRequest) -> None:
        """Admission-to-pickup wait, the queueing half of request latency
        (the other half, the learned batch compute, is ``service_time``).
        Recorded for every popped request — including abandoned ones, whose
        queue wait is exactly what blew their budget."""
        self.telemetry.histogram(
            "queue_wait_seconds", "request wait from admission to worker pickup"
        ).observe(time.monotonic() - request.enqueued_at)

    def _coalesce(self, first: _PendingRequest) -> list[_PendingRequest]:
        """Merge queued requests with the same environment key into one
        learned batch, lingering up to ``coalesce_window_ms`` for more."""
        group = [first]
        total = len(first.plans)
        linger_until = time.monotonic() + self.config.coalesce_window_ms / 1e3
        while total < self.config.max_coalesce_plans:
            with self._work:
                while (
                    self._running
                    and not self._queue
                    and time.monotonic() < linger_until
                ):
                    self._work.wait(timeout=max(1e-4, linger_until - time.monotonic()))
                if not self._queue:
                    break
                nxt = self._queue[0]
                if nxt.env_key != first.env_key:
                    break
                if total + len(nxt.plans) > self.config.max_coalesce_plans:
                    break
                self._queue.popleft()
                self.telemetry.gauge("queue_depth", "pending requests").set(
                    len(self._queue)
                )
                self._observe_queue_wait(nxt)
                if nxt.done:
                    skipped = nxt  # answered by a concurrent close() drain
                    nxt = None
                    drained = True
                elif nxt.abandoned:
                    skipped = nxt
                    nxt = None
                    drained = False
                else:
                    drained = False
                    self._inflight.append(nxt)
            if nxt is None:
                self._pacer_release(skipped)
                if not drained:
                    self.breaker.record_failure(kind="slow")
                continue
            group.append(nxt)
            total += len(nxt.plans)
        return group

    def _execute(self, group: list[_PendingRequest]) -> None:
        all_plans = [plan for request in group for plan in request.plans]
        env_features = group[0].env_features
        batch_span = NULL_SPAN
        if self.tracer is not None:
            # The batch span lives in the first sampled request's trace and
            # *links* every coalesced request (their ids ride as attributes;
            # each linked request span points back via batch_span_id).
            primary = next((r.span for r in group if r.span.sampled), None)
            if primary is not None:
                batch_span = self.tracer.start_span(
                    "gateway.batch",
                    parent=primary,
                    attrs={
                        "n_requests": len(group),
                        "n_plans": len(all_plans),
                        "link_trace_ids": [
                            r.span.trace_id for r in group if r.span.sampled
                        ],
                        "link_span_ids": [
                            r.span.span_id for r in group if r.span.sampled
                        ],
                    },
                )
        started = time.monotonic()
        error: BaseException | None = None
        predictions: np.ndarray | None = None
        try:
            with self._lock:
                if self._fault_budget > 0:
                    self._fault_budget -= 1
                    raise self._fault_error or RuntimeError(
                        "injected learned-path fault"
                    )
            if batch_span.sampled:
                # Activate so the serving layer's traced_sections (encode /
                # forward / quantize) nest under this batch.
                with self._service_lock, activate_span(batch_span):
                    predictions = self._service.predict(
                        all_plans, env_features=env_features
                    )
            else:
                with self._service_lock:
                    predictions = self._service.predict(
                        all_plans, env_features=env_features
                    )
        except BaseException as exc:  # noqa: BLE001 — every failure must answer
            error = exc
        elapsed = time.monotonic() - started
        if batch_span.sampled:
            if error is not None:
                batch_span.set_attr("error", repr(error))
            # Finish before any caller's event fires: when a fleet worker
            # drains spans for a trace right after predict() returns, the
            # batch (and nested serving) spans are already buffered.
            batch_span.finish()
        self.telemetry.counter("batches_total", "learned batches executed").inc()
        self.telemetry.histogram(
            "learned_batch_seconds", "learned-path batch latency"
        ).observe(elapsed)
        self.telemetry.histogram("batch_plans", "plans per learned batch").observe(
            len(all_plans)
        )

        service_time = self.telemetry.histogram(
            "service_time_seconds",
            "learned-path compute share of request latency (per request, its "
            "batch's execution time; queue_wait_seconds holds the other half)",
        )
        offset = 0
        now = time.monotonic()
        slots = 0
        for request in group:
            n = len(request.plans)
            with self._lock:
                abandoned = request.abandoned
                drained = request.done  # answered by a concurrent close()
                slots += request.paced
                request.paced = False
                if not abandoned and not drained:
                    if request.span.sampled and batch_span.sampled:
                        request.span.set_attr("batch_span_id", batch_span.span_id)
                    request.done = True
                    if error is not None:
                        request.error = error
                    else:
                        request.result = np.asarray(predictions[offset : offset + n])
                    request.event.set()
            if drained:
                pass  # caller already answered from the fallback
            elif abandoned:
                # Caller answered from fallback at its deadline while we were
                # computing: a slow call against the breaker.
                self.breaker.record_failure(kind="slow")
            elif error is not None:
                self.breaker.record_failure(kind="error")
            else:
                service_time.observe(elapsed)
                self.breaker.record_success(now - request.enqueued_at)
            offset += n
        if self.pacer is not None and slots:
            if error is None:
                # The pipe computed this batch whether or not every caller
                # stayed to hear the answer — it is a genuine delivery-rate
                # and queue-free-latency measurement of the serving path.
                self.pacer.on_delivered(slots, elapsed_seconds=elapsed)
            else:
                # A failed batch measures nothing; just return the slots.
                self.pacer.release(slots)
        self._sync_gauges()

    # -- reporting -------------------------------------------------------------

    def _sync_gauges(self) -> None:
        self.telemetry.gauge("breaker_state", "0 closed, 1 half-open, 2 open").set(
            _BREAKER_STATE_CODES[self.breaker.state]
        )
        if self.pacer is not None:
            self.pacer.sync_gauges(self.telemetry)
        version = self._model_version()
        if version is not None:
            self.telemetry.gauge(
                "model_weights_version", "served weights_version"
            ).set(version)
        service = self._service
        counters = getattr(service, "cache_counters", None)
        if counters is not None:
            for name, value in counters().items():
                self.telemetry.gauge(
                    f"serving_{name}",
                    "inference-service counter: cache hit/miss tallies plus the "
                    "cold-path attribution split (encode/forward/quantize "
                    "seconds, parallel-encode batches, warmed plans, "
                    "quantization gate state)",
                ).set(value)

    def stats(self, *, include_samples: bool = False) -> dict:
        """JSON-able operational snapshot: telemetry, breaker, pacer, queue.
        ``include_samples`` attaches raw histogram reservoirs so fleet-level
        merges can compute exact quantiles."""
        self._sync_gauges()
        snapshot = self.telemetry.snapshot(include_samples=include_samples)
        with self._lock:
            depth = len(self._queue)
        snapshot["breaker"] = self.breaker.stats()
        if self.pacer is not None:
            snapshot["pacer"] = self.pacer.stats()
        if self.tracer is not None:
            snapshot["tracing"] = self.tracer.stats()
        if self.recorder is not None:
            snapshot["flight_recorder"] = self.recorder.stats()
        if self.slo is not None:
            snapshot["slo"] = self.slo.snapshot()
        snapshot["queue_depth"] = depth
        snapshot["has_model"] = self.has_model
        return snapshot

    def to_prometheus(self) -> str:
        self._sync_gauges()
        if self.slo is not None:
            self.slo.export(self.telemetry)
        return self.telemetry.to_prometheus()

    # -- shutdown --------------------------------------------------------------

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop the worker, draining every already-admitted request.

        New admissions are refused immediately (answered from the fallback
        with reason ``"closed"``).  The worker keeps processing what was
        already admitted — those callers still get learned answers — and if
        it has not finished within ``timeout`` (a stuck learned path),
        everything still queued *or in flight* is failed over so the waiting
        callers answer from the fallback instead of blocking forever.  The
        gateway's one invariant survives shutdown: every admitted request is
        answered."""
        with self._work:
            self._running = False
            self._work.notify_all()
        self._worker.join(timeout)
        released = 0
        with self._lock:
            stranded = list(self._queue) + list(self._inflight)
            self._queue.clear()
            self._inflight.clear()
            for request in stranded:
                released += request.paced
                request.paced = False
                if request.done:
                    continue
                request.done = True
                request.error = GatewayClosedError("gateway closed")
                request.event.set()
        if self.pacer is not None and released:
            self.pacer.release(released)

    def __enter__(self) -> "OptimizerGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
