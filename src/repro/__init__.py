"""repro: a reproduction of LOAM, the learned query optimizer for
distributed multi-tenant data warehouses (Weng et al., SIGMOD Industrial).

Top-level layout:

* :mod:`repro.warehouse` — MiniDW, the simulated MaxCompute-like substrate
  (catalog, native optimizer, cluster, executor, workload generation);
* :mod:`repro.nn` — a numpy neural-network framework (autodiff, tree
  convolution, transformer, GCN, GBDT, gradient reversal);
* :mod:`repro.core` — LOAM itself (plan encoding, adaptive cost predictor,
  plan explorer, cost inference, deviance theory, project selection);
* :mod:`repro.serving` — the online inference fast path (encoding cache with
  environment splicing, size-bucketed micro-batching, no-autodiff forward);
* :mod:`repro.evaluation` — the experiment harness reproducing the paper's
  tables and figures.
"""

from repro.core import LOAM, LOAMConfig
from repro.warehouse import ProjectProfile, generate_project

__version__ = "1.0.0"

__all__ = ["LOAM", "LOAMConfig", "ProjectProfile", "generate_project", "__version__"]
