"""Query model: logical queries and parameterized templates.

Production MaxCompute workloads are pervasively driven by parameterized,
template-based queries whose parameters vary across runs (Section 4 of the
paper).  A :class:`QueryTemplate` fixes the join structure, the predicated
columns, and the aggregation; :meth:`QueryTemplate.instantiate` draws fresh
predicate parameters and partition fractions, producing a :class:`Query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["Predicate", "JoinSpec", "AggregateSpec", "Query", "QueryTemplate"]

JOIN_FORMS = ("inner", "left", "right", "full")
AGG_FUNCS = ("sum", "count", "avg", "min", "max")
PREDICATE_OPS = ("=", "!=", "<", ">", "between", "like")


@dataclass(frozen=True)
class Predicate:
    """A filter ``table.column <op> value``.

    ``value`` is the parameter expressed as a *rank fraction* in [0, 1]: for
    an equality predicate it selects the value at that frequency-rank
    quantile; for a range predicate it is the covered fraction of the rank
    domain.  This keeps parameters comparable across columns with different
    domains while still exercising the full selectivity range.
    """

    table: str
    column: str
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in PREDICATE_OPS:
            raise ValueError(f"unknown predicate op {self.op!r}")
        if not 0.0 <= self.value <= 1.0:
            raise ValueError(f"predicate value must be in [0, 1], got {self.value}")

    @property
    def qualified_column(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str
    form: str = "inner"

    def __post_init__(self) -> None:
        if self.form not in JOIN_FORMS:
            raise ValueError(f"unknown join form {self.form!r}")
        if self.left_table == self.right_table:
            raise ValueError("self-joins are expressed via table aliases, not JoinSpec")

    def touches(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def column_for(self, table: str) -> str:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise KeyError(f"join {self} does not touch table {table!r}")


@dataclass(frozen=True)
class AggregateSpec:
    """A final aggregation ``func(agg_column) GROUP BY group_by``."""

    func: str
    table: str
    agg_column: str
    group_by: tuple[str, ...] = ()  # qualified column names

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise ValueError(f"unknown aggregate function {self.func!r}")


@dataclass(frozen=True)
class Query:
    """A logical query: a connected equi-join graph plus filters and an
    optional aggregation.

    ``partition_fractions`` maps each table to the fraction of its partitions
    the query touches (partition pruning is resolved before optimization in
    MaxCompute).  ``tables`` is in syntactic (FROM-clause) order, which the
    native optimizer falls back to when join reordering is disabled.
    """

    query_id: str
    project: str
    template_id: str
    tables: tuple[str, ...]
    joins: tuple[JoinSpec, ...] = ()
    predicates: tuple[Predicate, ...] = ()
    aggregate: AggregateSpec | None = None
    partition_fractions: dict[str, float] = field(default_factory=dict)
    submit_day: int = 0

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("query must reference at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError("duplicate tables in query (aliases are unsupported)")
        table_set = set(self.tables)
        for join in self.joins:
            if join.left_table not in table_set or join.right_table not in table_set:
                raise ValueError(f"join {join} references a table outside the query")
        for pred in self.predicates:
            if pred.table not in table_set:
                raise ValueError(f"predicate {pred} references a table outside the query")
        if len(self.tables) > 1 and not self._is_connected():
            raise ValueError("join graph must be connected")

    def _is_connected(self) -> bool:
        adjacency: dict[str, set[str]] = {t: set() for t in self.tables}
        for join in self.joins:
            adjacency[join.left_table].add(join.right_table)
            adjacency[join.right_table].add(join.left_table)
        seen = {self.tables[0]}
        frontier = [self.tables[0]]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self.tables)

    @property
    def n_tables(self) -> int:
        return len(self.tables)

    def predicates_on(self, table: str) -> tuple[Predicate, ...]:
        return tuple(p for p in self.predicates if p.table == table)

    def joins_between(self, left: frozenset[str], right: frozenset[str]) -> list[JoinSpec]:
        out = []
        for join in self.joins:
            a, b = join.left_table, join.right_table
            if (a in left and b in right) or (a in right and b in left):
                out.append(join)
        return out

    def partition_fraction(self, table: str) -> float:
        return self.partition_fractions.get(table, 1.0)

    def signature(self) -> tuple:
        """A structural+parameter signature used for deduplication."""
        return (
            self.project,
            self.template_id,
            self.tables,
            self.joins,
            tuple(sorted((p.qualified_column, p.op, round(p.value, 4)) for p in self.predicates)),
            tuple(sorted((t, round(f, 4)) for t, f in self.partition_fractions.items())),
        )


@dataclass(frozen=True)
class QueryTemplate:
    """A parameterized query shape.

    Instantiation redraws predicate parameters (rank fractions) and the
    per-table partition fractions; everything structural is fixed.  This is
    the repetition signal LOAM's statistics-free encoding exploits.
    """

    template_id: str
    project: str
    tables: tuple[str, ...]
    joins: tuple[JoinSpec, ...]
    predicate_columns: tuple[tuple[str, str, str], ...]  # (table, column, op)
    aggregate: AggregateSpec | None = None
    partition_fraction_range: tuple[float, float] = (0.05, 1.0)
    weight: float = 1.0

    def instantiate(
        self, query_id: str, rng: np.random.Generator, *, submit_day: int = 0
    ) -> Query:
        predicates = tuple(
            Predicate(table=t, column=c, op=op, value=float(rng.random()))
            for (t, c, op) in self.predicate_columns
        )
        lo, hi = self.partition_fraction_range
        fractions = {
            table: float(rng.uniform(lo, hi)) for table in self.tables
        }
        return Query(
            query_id=query_id,
            project=self.project,
            template_id=self.template_id,
            tables=self.tables,
            joins=self.joins,
            predicates=predicates,
            aggregate=self.aggregate,
            partition_fractions=fractions,
            submit_day=submit_day,
        )

    def with_weight(self, weight: float) -> "QueryTemplate":
        return replace(self, weight=weight)
