"""Cardinality propagation and intrinsic operator CPU costs.

Two cardinality models share one propagation engine:

* the **true** model reads ground-truth distributions from the catalog and
  is used by the executor to compute actual work;
* the **estimated** model reads a :class:`~repro.warehouse.statistics.StatisticsView`
  and is what the native optimizer plans with.  When column statistics are
  missing it falls back to textbook default selectivities and a
  max-row-count join heuristic — the unreliable estimates challenge C2 is
  about.

Intrinsic cost is CPU work in abstract cost units, before any environment
effect.  Constants are chosen so the classic trade-offs are live: broadcast
joins win only for small build sides, merge joins win on pre-sorted inputs,
partial aggregation pays off only for low group counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.warehouse.catalog import Catalog
from repro.warehouse.operators import (
    AggregateNode,
    CalcNode,
    ExchangeNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SortNode,
    SpoolNode,
    TableScanNode,
)
from repro.warehouse.query import Predicate, Query
from repro.warehouse.statistics import DEFAULT_SELECTIVITY, StatisticsView

__all__ = [
    "CostConstants",
    "COST",
    "CardinalityModel",
    "TrueCardinalityModel",
    "EstimatedCardinalityModel",
    "annotate_true_cardinalities",
    "intrinsic_node_cost",
    "intrinsic_plan_cost",
    "stage_parallelism",
]


@dataclass(frozen=True)
class CostConstants:
    """Per-row cost coefficients of each operator family."""

    scan_base: float = 0.20
    scan_per_column: float = 0.06
    filter_per_predicate: float = 0.12
    calc: float = 0.22
    project: float = 0.05
    hash_build: float = 1.20
    hash_probe: float = 0.90
    join_output: float = 0.30
    merge_input: float = 0.55
    sort_factor: float = 0.04
    hash_spill_threshold: float = 5_000_000.0
    hash_spill_penalty: float = 2.2
    exchange: float = 0.50
    broadcast_per_instance: float = 1.20
    hash_agg_input: float = 0.80
    hash_agg_group: float = 0.20
    sort_agg_input: float = 0.30
    spool_write: float = 0.15
    limit: float = 0.01
    rows_per_instance: float = 2_000_000.0
    max_instances: int = 256


COST = CostConstants()


def stage_parallelism(rows: float, constants: CostConstants = COST) -> int:
    """Degree of parallelism the scheduler grants a stage of ``rows`` input."""
    return int(min(constants.max_instances, max(1, math.ceil(rows / constants.rows_per_instance))))


class CardinalityModel:
    """Shared bottom-up cardinality propagation over a plan tree.

    Subclasses provide the selectivity of a predicate, table base rows, and
    column NDVs; the engine handles the operator algebra and NDV bookkeeping.
    """

    def selectivity(self, predicate: Predicate) -> float:
        raise NotImplementedError

    def base_rows(self, table: str) -> float:
        raise NotImplementedError

    def column_ndv(self, qualified_column: str) -> float:
        raise NotImplementedError

    def annotate(self, root: PlanNode, query: Query, *, field: str = "true_rows") -> float:
        """Fill ``field`` on every node bottom-up; returns the root's rows.

        As a side effect every node also gets ``n_base_tables`` — the number
        of base tables in its subtree — which the Lero-style cardinality
        scaling consults (it applies to subqueries with >= 3 inputs only).
        """
        ndv_memo: dict[int, dict[str, float]] = {}
        spool_cache: dict[str, tuple[float, dict[str, float]]] = {}
        rows = self._annotate_node(root, query, field, ndv_memo, spool_cache)
        return rows

    # -- engine -----------------------------------------------------------

    def _annotate_node(
        self,
        node: PlanNode,
        query: Query,
        field: str,
        ndv_memo: dict[int, dict[str, float]],
        spool_cache: dict[str, tuple[float, dict[str, float]]],
    ) -> float:
        child_rows = [
            self._annotate_node(child, query, field, ndv_memo, spool_cache)
            for child in node.children
        ]
        if isinstance(node, TableScanNode):
            node.n_base_tables = 1
        else:
            node.n_base_tables = sum(c.n_base_tables for c in node.children)
        rows, ndvs = self._apply(node, query, child_rows, ndv_memo, spool_cache, field)
        rows = max(rows, 1.0)
        setattr(node, field, rows)
        ndv_memo[node.node_id] = ndvs
        return rows

    def _apply(
        self,
        node: PlanNode,
        query: Query,
        child_rows: list[float],
        ndv_memo: dict[int, dict[str, float]],
        spool_cache: dict[str, tuple[float, dict[str, float]]],
        field: str,
    ) -> tuple[float, dict[str, float]]:
        if isinstance(node, TableScanNode):
            raw = self.base_rows(node.table) * query.partition_fraction(node.table)
            setattr(node, f"raw_{field}", max(raw, 1.0))
            rows = raw
            for pred in node.predicates:
                rows *= self.selectivity(pred)
            ndvs = {}
            return rows, ndvs

        if isinstance(node, (FilterNode, CalcNode)):
            rows = child_rows[0]
            for pred in node.predicates:
                rows *= self.selectivity(pred)
            return rows, dict(ndv_memo[node.children[0].node_id])

        if isinstance(node, JoinNode):
            left_rows, right_rows = child_rows[0], child_rows[1]
            left_ndvs = ndv_memo[node.children[0].node_id]
            right_ndvs = ndv_memo[node.children[1].node_id]
            lkey_ndv = min(left_ndvs.get(node.left_key, self.column_ndv(node.left_key)), left_rows)
            rkey_ndv = min(
                right_ndvs.get(node.right_key, self.column_ndv(node.right_key)), right_rows
            )
            denom = max(lkey_ndv, rkey_ndv, 1.0)
            rows = left_rows * right_rows / denom
            if node.form == "left":
                rows = max(rows, left_rows)
            elif node.form == "right":
                rows = max(rows, right_rows)
            elif node.form == "full":
                rows = max(rows, left_rows + right_rows)
            ndvs = {**left_ndvs, **right_ndvs}
            ndvs = {col: min(ndv, rows) for col, ndv in ndvs.items()}
            ndvs[node.left_key] = min(lkey_ndv, rkey_ndv, rows)
            ndvs[node.right_key] = ndvs[node.left_key]
            return rows, ndvs

        if isinstance(node, AggregateNode):
            rows_in = child_rows[0]
            child_ndvs = ndv_memo[node.children[0].node_id]
            if not node.group_by:
                return 1.0, {}
            groups = 1.0
            for col in node.group_by:
                groups *= min(child_ndvs.get(col, self.column_ndv(col)), rows_in)
            groups = min(groups, rows_in)
            if node.partial:
                # A pre-shuffle partial aggregation cannot reduce below the
                # per-instance group count; approximate with groups * dop.
                dop = stage_parallelism(rows_in)
                groups = min(rows_in, groups * max(1, dop // 2 + 1))
            ndvs = {col: min(child_ndvs.get(col, groups), groups) for col in node.group_by}
            return groups, ndvs

        if isinstance(node, LimitNode):
            rows = min(child_rows[0], float(node.limit))
            return rows, dict(ndv_memo[node.children[0].node_id])

        if isinstance(node, SpoolNode):
            cached = spool_cache.get(node.shared_id)
            if cached is not None:
                return cached
            result = child_rows[0], dict(ndv_memo[node.children[0].node_id])
            spool_cache[node.shared_id] = result
            return result

        if isinstance(node, (ProjectNode, SortNode, ExchangeNode)):
            return child_rows[0], dict(ndv_memo[node.children[0].node_id])

        raise TypeError(f"unhandled plan node type {type(node).__name__}")


class TrueCardinalityModel(CardinalityModel):
    """Ground-truth cardinalities from the catalog (used by the executor)."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def selectivity(self, predicate: Predicate) -> float:
        column = self.catalog.column(predicate.qualified_column)
        if predicate.op == "=":
            rank = max(1, min(column.ndv, int(round(predicate.value * column.ndv)) or 1))
            return column.selectivity_eq(rank)
        if predicate.op == "!=":
            rank = max(1, min(column.ndv, int(round(predicate.value * column.ndv)) or 1))
            return 1.0 - column.selectivity_eq(rank)
        if predicate.op == "<":
            return column.selectivity_range(predicate.value)
        if predicate.op == ">":
            return 1.0 - column.selectivity_range(predicate.value)
        if predicate.op == "between":
            return column.selectivity_range(
                min(1.0, predicate.value + 0.1)
            ) - column.selectivity_range(max(0.0, predicate.value - 0.1))
        if predicate.op == "like":
            # LIKE selectivity depends on string contents we do not model;
            # treat as a mid-selectivity scan predicate.
            return 0.5 * column.selectivity_range(max(predicate.value, 1e-3))
        raise ValueError(f"unknown predicate operator {predicate.op!r}")

    def base_rows(self, table: str) -> float:
        return float(self.catalog.table(table).n_rows)

    def column_ndv(self, qualified_column: str) -> float:
        return float(self.catalog.column(qualified_column).ndv)


class EstimatedCardinalityModel(CardinalityModel):
    """The native optimizer's view: statistics-dependent, possibly defaulted.

    ``cardinality_scale`` implements the Lero-style steering knob: estimated
    cardinalities of join outputs are multiplied by the scale, biasing the
    optimizer toward bushier/flatter structures (Section 3, plan explorer).
    """

    def __init__(self, stats: StatisticsView, *, cardinality_scale: float = 1.0) -> None:
        if cardinality_scale <= 0:
            raise ValueError("cardinality_scale must be positive")
        self.stats = stats
        self.cardinality_scale = cardinality_scale

    def selectivity(self, predicate: Predicate) -> float:
        column = self.stats.catalog.column(predicate.qualified_column)
        return self.stats.estimate_selectivity(column, predicate.op, predicate.value)

    def base_rows(self, table: str) -> float:
        return float(self.stats.estimated_rows(table))

    def column_ndv(self, qualified_column: str) -> float:
        table, _, column = qualified_column.partition(".")
        col_stats = self.stats.column_stats(table, column)
        if col_stats is not None:
            return float(col_stats.ndv)
        # Missing statistics: assume the join key is close to unique on the
        # smaller side — the classic max-rows heuristic.  The engine takes
        # min(ndv, rows), so "infinite" NDV degrades to rows.
        return math.inf

    def _apply(self, node, query, child_rows, ndv_memo, spool_cache, field):
        rows, ndvs = super()._apply(node, query, child_rows, ndv_memo, spool_cache, field)
        # Lero-style steering scales estimates only for subqueries with at
        # least three inputs (Section 3), so the distortion does not compound
        # through every join of a deep plan.
        if isinstance(node, JoinNode) and getattr(node, "n_base_tables", 0) >= 3:
            rows *= self.cardinality_scale
        return rows, ndvs


def annotate_true_cardinalities(root: PlanNode, query: Query, catalog: Catalog) -> float:
    """Convenience wrapper: fill ``true_rows`` on every node."""
    return TrueCardinalityModel(catalog).annotate(root, query, field="true_rows")


def intrinsic_node_cost(
    node: PlanNode, *, field: str = "true_rows", constants: CostConstants = COST
) -> float:
    """CPU work of one operator given its (and its children's) cardinalities."""
    rows_out = getattr(node, field)
    child_rows = [getattr(child, field) for child in node.children]

    if isinstance(node, TableScanNode):
        # Scans read every row of the accessed partitions; predicates are
        # evaluated on read, so cost tracks the pre-filter row count.
        scanned = getattr(node, f"raw_{field}", rows_out)
        width = constants.scan_base + constants.scan_per_column * node.n_columns
        width += constants.filter_per_predicate * len(node.predicates)
        return scanned * width

    if isinstance(node, FilterNode):
        return child_rows[0] * constants.filter_per_predicate * max(1, len(node.predicates))

    if isinstance(node, CalcNode):
        return child_rows[0] * constants.calc

    if isinstance(node, ProjectNode):
        return child_rows[0] * constants.project

    if isinstance(node, JoinNode):
        build, probe = child_rows[0], child_rows[1]
        out = rows_out
        if node.algorithm == "hash":
            cost = (
                constants.hash_build * build
                + constants.hash_probe * probe
                + constants.join_output * out
            )
            if build > constants.hash_spill_threshold:
                # Build side exceeds memory: hash table spills to disk.
                cost *= constants.hash_spill_penalty
            return cost
        if node.algorithm == "merge":
            return constants.merge_input * (build + probe) + constants.join_output * out
        if node.algorithm == "broadcast":
            instances = stage_parallelism(probe, constants)
            return (
                constants.broadcast_per_instance * build * instances
                + constants.hash_probe * probe
                + constants.join_output * out
            )
        raise ValueError(f"unknown join algorithm {node.algorithm!r}")

    if isinstance(node, AggregateNode):
        rows_in = child_rows[0]
        # Reading from a materialized spool is cheaper: narrow columnar data.
        input_discount = 0.7 if node.children and isinstance(node.children[0], SpoolNode) else 1.0
        if node.kind == "hash":
            return (
                constants.hash_agg_input * rows_in * input_discount
                + constants.hash_agg_group * rows_out
            )
        return constants.sort_agg_input * rows_in * input_discount

    if isinstance(node, SortNode):
        rows = child_rows[0]
        return constants.sort_factor * rows * math.log2(rows + 2.0)

    if isinstance(node, ExchangeNode):
        if node.mode == "broadcast":
            instances = stage_parallelism(child_rows[0], constants)
            return constants.exchange * child_rows[0] * instances
        return constants.exchange * child_rows[0]

    if isinstance(node, SpoolNode):
        return constants.spool_write * child_rows[0]

    if isinstance(node, LimitNode):
        return constants.limit * rows_out

    raise TypeError(f"unhandled plan node type {type(node).__name__}")


def intrinsic_plan_cost(
    root: PlanNode, *, field: str = "true_rows", constants: CostConstants = COST
) -> float:
    """Total CPU work of a plan, with spool sharing counted once."""
    total = 0.0
    seen_spools: set[str] = set()

    def walk(node: PlanNode) -> None:
        nonlocal total
        if isinstance(node, SpoolNode):
            if node.shared_id in seen_spools:
                return  # shared subtree already charged
            seen_spools.add(node.shared_id)
        total += intrinsic_node_cost(node, field=field, constants=constants)
        for child in node.children:
            walk(child)

    walk(root)
    return total
