"""The historical query repository.

Upon query completion MaxCompute logs the SQL statement, physical plan,
execution environment, end-to-end cost, and latency into a per-project
repository (Section 2.1, phase 4).  This richer-than-traditional logging is
the data foundation LOAM trains on.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.warehouse.executor import ExecutionRecord

__all__ = ["QueryRepository"]


class QueryRepository:
    """Append-only store of execution records for one project."""

    def __init__(self, project: str) -> None:
        self.project = project
        self._records: list[ExecutionRecord] = []

    def log(self, record: ExecutionRecord) -> None:
        if record.project != self.project:
            raise ValueError(
                f"record for project {record.project!r} logged to repository "
                f"of {self.project!r}"
            )
        self._records.append(record)

    def extend(self, records: Iterable[ExecutionRecord]) -> None:
        for record in records:
            self.log(record)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[ExecutionRecord]:
        return list(self._records)

    def records_between(self, first_day: int, last_day: int) -> list[ExecutionRecord]:
        """Records with ``first_day <= day <= last_day``."""
        return [r for r in self._records if first_day <= r.day <= last_day]

    def default_plan_records(
        self, first_day: int | None = None, last_day: int | None = None
    ) -> list[ExecutionRecord]:
        out = []
        for record in self._records:
            if not record.is_default:
                continue
            if first_day is not None and record.day < first_day:
                continue
            if last_day is not None and record.day > last_day:
                continue
            out.append(record)
        return out

    def deduplicated(self, records: list[ExecutionRecord] | None = None) -> list[ExecutionRecord]:
        """Drop repeated executions of an identical query (the paper trains
        on deduplicated queries over 30 consecutive days, Section 7.1)."""
        records = self._records if records is None else records
        seen: set[tuple] = set()
        out = []
        for record in records:
            key = record.plan.query.signature()
            if key in seen:
                continue
            seen.add(key)
            out.append(record)
        return out

    def queries_per_day(self) -> dict[int, int]:
        return dict(Counter(r.day for r in self._records))

    def recurring_groups(self, *, min_runs: int = 2) -> dict[tuple, list[ExecutionRecord]]:
        """Group repeated executions of structurally identical plans —
        the recurring queries behind Figures 1, 5, and 15."""
        groups: dict[tuple, list[ExecutionRecord]] = {}
        for record in self._records:
            key = (record.template_id, record.plan.structural_signature())
            groups.setdefault(key, []).append(record)
        return {k: v for k, v in groups.items() if len(v) >= min_runs}

    def average_cpu_cost(self) -> float:
        if not self._records:
            return 0.0
        return sum(r.cpu_cost for r in self._records) / len(self._records)
