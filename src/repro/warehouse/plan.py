"""Physical plans: the optimizer's output and the unit LOAM reasons about."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from repro.warehouse.operators import PlanNode
from repro.warehouse.query import Query

__all__ = ["PhysicalPlan"]


@dataclass
class PhysicalPlan:
    """An operator tree bound to the query it answers.

    ``provenance`` records how the plan was produced: ``"default"`` for the
    native optimizer's unsteered output, ``"flag:<name>"`` for a toggled
    optimizer flag, and ``"cardscale:<factor>"`` for Lero-style cardinality
    scaling.  The LOAM domain classifier learns to tell default plans from
    steered candidates by their feature distribution, so provenance is also
    the domain label during adaptive training.
    """

    root: PlanNode
    query: Query
    provenance: str = "default"
    knob_signature: tuple = field(default_factory=tuple)

    def iter_nodes(self) -> Iterator[PlanNode]:
        return self.root.iter_nodes()

    def iter_postorder(self) -> Iterator[PlanNode]:
        return self.root.iter_postorder()

    @property
    def n_nodes(self) -> int:
        return self.root.n_nodes()

    @property
    def depth(self) -> int:
        return self.root.depth()

    @property
    def is_default(self) -> bool:
        return self.provenance == "default"

    def structural_signature(self) -> tuple:
        return self.root.structural_signature()

    def operator_counts(self) -> Counter:
        return Counter(node.op_type for node in self.iter_nodes())

    def parent_child_patterns(self) -> Counter:
        """Counts of ``<parent, child>`` operator-type pairs.

        This is the structure encoding used by the project Ranker
        (Appendix D.2): pattern counts are more informative than bare
        operator counts because they expose shapes like nested joins.
        """
        patterns: Counter = Counter()
        for node in self.iter_nodes():
            for child in node.children:
                patterns[(node.op_type, child.op_type)] += 1
        return patterns

    def clone(self) -> "PhysicalPlan":
        return PhysicalPlan(
            root=self.root.clone(),
            query=self.query,
            provenance=self.provenance,
            knob_signature=self.knob_signature,
        )

    def estimated_total_rows(self) -> float:
        """Sum of estimated rows across nodes — the native rough cost proxy
        used to retain top-k candidates at evaluation time (Section 7.1)."""
        return sum(node.est_rows for node in self.iter_nodes())

    def pretty(self) -> str:
        """Multi-line indented rendering, for debugging and examples."""
        lines: list[str] = []

        def walk(node: PlanNode, depth: int) -> None:
            detail = ""
            sig = node.attribute_signature()
            if sig:
                detail = f" {sig}"
            lines.append(f"{'  ' * depth}{node.op_type}{detail} [est={node.est_rows:.0f}]")
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(query={self.query.query_id!r}, provenance={self.provenance!r}, "
            f"n_nodes={self.n_nodes})"
        )
