"""Statistics views: what the native optimizer is allowed to know.

MaxCompute does not automatically maintain attribute-level statistics
(challenge C2).  The :class:`StatisticsView` mediates every statistics lookup
the native optimizer makes:

* with probability ``availability`` a table has *maintained* statistics —
  NDVs and skew estimates with a small relative error (stale but usable);
* otherwise only coarse metadata survives: a historical row count with a
  potentially large drift, and no per-column information at all.

When column statistics are missing, the optimizer must fall back to textbook
default selectivities, and join reordering is disabled for the affected
subtrees, exactly as Section 2.1 of the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import spawn_rng
from repro.warehouse.catalog import Catalog, Column, Table

__all__ = ["ColumnStats", "TableStats", "StatisticsView", "DEFAULT_SELECTIVITY"]

#: Textbook fallback selectivities used when column statistics are missing.
DEFAULT_SELECTIVITY = {
    "=": 0.1,
    "!=": 0.9,
    "<": 1.0 / 3.0,
    ">": 1.0 / 3.0,
    "between": 0.25,
    "like": 0.2,
}


@dataclass(frozen=True)
class ColumnStats:
    """Optimizer-visible statistics of one column (possibly noisy)."""

    ndv: int
    skew: float


@dataclass(frozen=True)
class TableStats:
    """Optimizer-visible statistics of one table."""

    n_rows: int
    n_partitions: int
    has_column_stats: bool
    columns: dict[str, ColumnStats]


class StatisticsView:
    """A noisy, partially-missing window onto the catalog's ground truth.

    Parameters
    ----------
    catalog:
        Ground-truth catalog.
    availability:
        Probability that a table has maintained column statistics.
    staleness:
        Relative error scale applied to maintained statistics, and to the
        historical row counts of tables without statistics (where the error
        is three times larger, modelling long-unrefreshed metadata).
    rng:
        Source of reproducible randomness; which tables have statistics is
        frozen at construction so repeated optimizations are deterministic.
    """

    def __init__(
        self,
        catalog: Catalog,
        *,
        availability: float = 0.0,
        staleness: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not 0.0 <= availability <= 1.0:
            raise ValueError(f"availability must be in [0, 1], got {availability}")
        if staleness < 0:
            raise ValueError(f"staleness must be >= 0, got {staleness}")
        self.catalog = catalog
        self.availability = availability
        self.staleness = staleness
        rng = rng or np.random.default_rng(0)
        self._stats: dict[str, TableStats] = {}
        for table in catalog.tables:
            child = spawn_rng(rng, "stats", catalog.project, table.name)
            self._stats[table.name] = self._materialize(table, child)

    def _materialize(self, table: Table, rng: np.random.Generator) -> TableStats:
        has_stats = bool(rng.random() < self.availability)
        row_error = self.staleness if has_stats else 3.0 * self.staleness
        n_rows = max(1, int(table.n_rows * float(np.exp(rng.normal(0.0, row_error)))))
        columns: dict[str, ColumnStats] = {}
        if has_stats:
            for col in table.columns:
                ndv = max(1, int(col.ndv * float(np.exp(rng.normal(0.0, self.staleness)))))
                columns[col.name] = ColumnStats(ndv=ndv, skew=col.skew)
        return TableStats(
            n_rows=n_rows,
            n_partitions=table.n_partitions,
            has_column_stats=has_stats,
            columns=columns,
        )

    def table_stats(self, table_name: str) -> TableStats:
        try:
            return self._stats[table_name]
        except KeyError:
            raise KeyError(f"no statistics entry for table {table_name!r}") from None

    def has_column_stats(self, table_name: str) -> bool:
        return self.table_stats(table_name).has_column_stats

    def estimated_rows(self, table_name: str) -> int:
        return self.table_stats(table_name).n_rows

    def column_stats(self, table_name: str, column_name: str) -> ColumnStats | None:
        stats = self.table_stats(table_name)
        if not stats.has_column_stats:
            return None
        return stats.columns.get(column_name)

    def estimate_selectivity(self, column: Column, op: str, value: float) -> float:
        """Estimate the selectivity of ``column <op> value``.

        ``value`` is the predicate parameter expressed as a rank fraction in
        [0, 1] (see :class:`repro.warehouse.query.Predicate`).  With
        statistics the estimate uses the recorded NDV/skew; without, the
        textbook default for the operator.
        """
        stats = self.column_stats(column.table, column.name)
        if stats is None:
            try:
                return DEFAULT_SELECTIVITY[op]
            except KeyError:
                raise ValueError(f"unknown predicate operator {op!r}") from None
        proxy = Column(column.name, column.table, ndv=stats.ndv, skew=stats.skew)
        if op == "=":
            rank = max(1, min(stats.ndv, int(round(value * stats.ndv)) or 1))
            return proxy.selectivity_eq(rank)
        if op == "!=":
            rank = max(1, min(stats.ndv, int(round(value * stats.ndv)) or 1))
            return 1.0 - proxy.selectivity_eq(rank)
        if op in ("<", ">"):
            frac = proxy.selectivity_range(value)
            return frac if op == "<" else 1.0 - frac
        if op == "between":
            return proxy.selectivity_range(min(1.0, value + 0.1)) - proxy.selectivity_range(
                max(0.0, value - 0.1)
            )
        if op == "like":
            return DEFAULT_SELECTIVITY["like"]
        raise ValueError(f"unknown predicate operator {op!r}")
