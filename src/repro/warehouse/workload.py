"""Project and workload generation.

MaxCompute hosts over 100 000 projects with heterogeneous workload patterns
(join topology, query volume) and data properties (table sizes, update
frequency, statistics coverage).  A :class:`ProjectProfile` captures the
axes of that heterogeneity; :func:`generate_project` materializes a catalog,
query templates, cluster, executor, and repository from one.

Heterogeneity matters for the reproduction:

* ``stats_availability`` controls how often the native optimizer plans
  blind, which is the main source of improvement space (challenge C2 →
  benefit for steering);
* ``queries_per_day``/``query_growth`` and ``temp_table_ratio`` drive the
  Filter rules R1–R3 (Appendix D.1);
* ``row_scale`` spreads average CPU cost across orders of magnitude, as in
  Table 1 (10^3 … 10^7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils import spawn_rng
from repro.warehouse.catalog import Catalog, Column, Table
from repro.warehouse.cluster import Cluster
from repro.warehouse.executor import ExecutionRecord, Executor
from repro.warehouse.optimizer import NativeOptimizer
from repro.warehouse.query import AggregateSpec, JoinSpec, QueryTemplate
from repro.warehouse.repository import QueryRepository
from repro.warehouse.statistics import StatisticsView

__all__ = ["ProjectProfile", "ProjectWorkload", "generate_project", "profile_population"]


@dataclass(frozen=True)
class ProjectProfile:
    """Generation parameters of one project."""

    name: str
    seed: int = 0
    n_tables: int = 40
    avg_columns_per_table: float = 15.0
    n_templates: int = 30
    queries_per_day: float = 400.0
    query_growth: float = 1.0
    stats_availability: float = 0.2
    temp_table_ratio: float = 0.2
    max_join_tables: int = 5
    row_scale: float = 1e6
    skew_level: float = 0.8
    agg_probability: float = 0.6
    noise_sigma: float = 0.12
    n_machines: int = 160

    def with_name(self, name: str) -> "ProjectProfile":
        return replace(self, name=name)


@dataclass
class ProjectWorkload:
    """Everything needed to run one project: data, optimizer, cluster, logs."""

    profile: ProjectProfile
    catalog: Catalog
    stats: StatisticsView
    templates: list[QueryTemplate]
    cluster: Cluster
    executor: Executor
    optimizer: NativeOptimizer
    repository: QueryRepository
    rng: np.random.Generator
    _query_counter: int = 0
    _template_weights: np.ndarray = field(default_factory=lambda: np.array([]))

    def __post_init__(self) -> None:
        weights = np.array([t.weight for t in self.templates], dtype=float)
        self._template_weights = weights / weights.sum()

    # -- query generation ----------------------------------------------------

    def next_query_id(self) -> str:
        self._query_counter += 1
        return f"{self.profile.name}-q{self._query_counter:06d}"

    def live_templates(self, day: int) -> tuple[list[QueryTemplate], np.ndarray]:
        live, weights = [], []
        for template, weight in zip(self.templates, self._template_weights):
            if all(self.catalog.table(t).is_live(day) for t in template.tables):
                live.append(template)
                weights.append(weight)
        if not live:
            # Fall back to templates over permanent tables only.
            raise RuntimeError(f"no live templates on day {day} for {self.profile.name}")
        w = np.array(weights)
        return live, w / w.sum()

    def sample_query(self, day: int):
        live, weights = self.live_templates(day)
        template = live[int(self.rng.choice(len(live), p=weights))]
        return template.instantiate(self.next_query_id(), self.rng, submit_day=day)

    def queries_on_day(self, day: int) -> int:
        volume = self.profile.queries_per_day * self.profile.query_growth**day
        return max(1, int(self.rng.poisson(volume)))

    # -- history simulation ----------------------------------------------------

    def simulate_history(
        self,
        n_days: int,
        *,
        start_day: int = 0,
        max_queries_per_day: int | None = None,
        progress: bool = False,
    ) -> None:
        """Run the project for ``n_days`` starting at ``start_day``, logging
        default-plan executions.  A nonzero ``start_day`` matters for
        projects with temporal tables, which only become live mid-horizon."""
        for day in range(start_day, start_day + n_days):
            n_queries = self.queries_on_day(day)
            if max_queries_per_day is not None:
                n_queries = min(n_queries, max_queries_per_day)
            for _ in range(n_queries):
                query = self.sample_query(day)
                plan = self.optimizer.optimize(query)
                record = self.executor.execute(
                    plan, rng=self.rng, day=day, noise_sigma=self.profile.noise_sigma
                )
                self.repository.log(record)
            if progress:
                print(f"[{self.profile.name}] day {day}: {n_queries} queries")

    def flighting(self, *, seed_key: object = "flighting"):
        """A fresh flighting environment for this project's catalog."""
        from repro.warehouse.flighting import FlightingEnvironment

        return FlightingEnvironment(
            self.catalog,
            n_machines=self.profile.n_machines,
            rng=spawn_rng(self.rng, seed_key),
            noise_sigma=self.profile.noise_sigma,
        )


# -- generation ---------------------------------------------------------------


def _make_table(
    name: str,
    rng: np.random.Generator,
    profile: ProjectProfile,
    *,
    created_day: int = 0,
    dropped_day: int | None = None,
) -> Table:
    n_rows = max(100, int(rng.lognormal(math.log(profile.row_scale), 1.0)))
    n_partitions = max(1, int(rng.lognormal(math.log(16), 1.0)))
    n_columns = max(4, int(rng.normal(profile.avg_columns_per_table, 4.0)))
    columns: list[Column] = []
    # A primary-key-like column: nearly unique.
    columns.append(Column("pk", name, ndv=max(2, int(n_rows * 0.9)), skew=0.0))
    # Foreign-key-ish join columns with moderate NDV and some skew.
    n_keys = min(4, max(2, n_columns // 5))
    for i in range(n_keys):
        ndv = max(2, int(n_rows ** rng.uniform(0.5, 0.85)))
        skew = float(rng.uniform(0.0, profile.skew_level))
        columns.append(Column(f"key{i}", name, ndv=ndv, skew=skew))
    # Attribute columns: wide NDV range, often skewed.
    for i in range(n_columns - 1 - n_keys):
        ndv = max(2, int(rng.lognormal(math.log(1000), 2.0)))
        skew = float(rng.uniform(0.0, 1.5 * profile.skew_level))
        columns.append(Column(f"attr{i}", name, ndv=ndv, skew=skew))
    return Table(
        name=name,
        n_rows=n_rows,
        n_partitions=n_partitions,
        columns=columns,
        created_day=created_day,
        dropped_day=dropped_day,
    )


def _key_columns(table: Table) -> list[Column]:
    return [c for c in table.columns if c.name == "pk" or c.name.startswith("key")]


def _attr_columns(table: Table) -> list[Column]:
    return [c for c in table.columns if c.name.startswith("attr")]


def _make_template(
    template_id: str,
    catalog: Catalog,
    candidate_tables: list[Table],
    rng: np.random.Generator,
    profile: ProjectProfile,
) -> QueryTemplate:
    n_join = int(rng.integers(1, profile.max_join_tables + 1))
    n_join = min(n_join, len(candidate_tables))
    idx = rng.choice(len(candidate_tables), size=n_join, replace=False)
    tables = [candidate_tables[int(i)] for i in idx]

    joins: list[JoinSpec] = []
    for i in range(1, len(tables)):
        # Chain or star topology, biased toward chains.
        anchor = tables[i - 1] if rng.random() < 0.7 else tables[int(rng.integers(0, i))]
        other = tables[i]
        if rng.random() < 0.75:
            # Foreign-key style join: the smaller side joins on its primary
            # key, bounding the output near the larger side's size (the
            # dominant join pattern in star/snowflake warehouse schemas).
            fact, dim = (anchor, other) if anchor.n_rows >= other.n_rows else (other, anchor)
            fact_keys = _key_columns(fact)
            left_key = fact_keys[int(rng.integers(0, len(fact_keys)))]
            joins.append(
                JoinSpec(
                    left_table=fact.name,
                    left_column=left_key.name,
                    right_table=dim.name,
                    right_column="pk",
                    form="inner" if rng.random() < 0.85 else str(rng.choice(["left", "right"])),
                )
            )
            continue
        # Occasional key-key join: output governed by key NDVs, can blow up.
        left_key = _key_columns(anchor)[int(rng.integers(0, len(_key_columns(anchor))))]
        right_key = _key_columns(other)[int(rng.integers(0, len(_key_columns(other))))]
        form = "inner" if rng.random() < 0.85 else str(rng.choice(["left", "right"]))
        joins.append(
            JoinSpec(
                left_table=anchor.name,
                left_column=left_key.name,
                right_table=other.name,
                right_column=right_key.name,
                form=form,
            )
        )

    predicate_columns: list[tuple[str, str, str]] = []
    n_predicates = int(rng.integers(0, 4))
    for _ in range(n_predicates):
        table = tables[int(rng.integers(0, len(tables)))]
        attrs = _attr_columns(table)
        if not attrs:
            continue
        column = attrs[int(rng.integers(0, len(attrs)))]
        op = str(rng.choice(["=", "=", "<", ">", "between", "like"]))
        predicate_columns.append((table.name, column.name, op))

    aggregate = None
    if rng.random() < profile.agg_probability:
        table = tables[int(rng.integers(0, len(tables)))]
        attrs = _attr_columns(table)
        agg_col = attrs[int(rng.integers(0, len(attrs)))].name if attrs else "pk"
        func = str(rng.choice(["sum", "count", "avg", "min", "max"]))
        group_by: tuple[str, ...] = ()
        if rng.random() < 0.75:
            if joins and rng.random() < 0.5:
                # Group by a join key: the shuffle-removal opportunity.
                spec = joins[int(rng.integers(0, len(joins)))]
                group_by = (f"{spec.left_table}.{spec.left_column}",)
            else:
                gb_table = tables[int(rng.integers(0, len(tables)))]
                keys = _key_columns(gb_table)
                gb_col = keys[int(rng.integers(0, len(keys)))]
                group_by = (f"{gb_table.name}.{gb_col.name}",)
        aggregate = AggregateSpec(
            func=func, table=table.name, agg_column=agg_col, group_by=group_by
        )

    weight = float(rng.lognormal(0.0, 1.0))
    return QueryTemplate(
        template_id=template_id,
        project=catalog.project,
        tables=tuple(t.name for t in tables),
        joins=tuple(joins),
        predicate_columns=tuple(predicate_columns),
        aggregate=aggregate,
        partition_fraction_range=(0.05, 1.0),
        weight=weight,
    )


def generate_project(
    profile: ProjectProfile, *, horizon_days: int = 40
) -> ProjectWorkload:
    """Materialize a full project from a profile, deterministically."""
    rng = np.random.default_rng(profile.seed)
    table_rng = spawn_rng(rng, "tables", profile.name)
    template_rng = spawn_rng(rng, "templates", profile.name)

    catalog = Catalog(profile.name)
    n_permanent = max(2, int(round(profile.n_tables * (1.0 - profile.temp_table_ratio))))
    permanent: list[Table] = []
    for i in range(n_permanent):
        table = _make_table(f"t{i}", table_rng, profile)
        catalog.add_table(table)
        permanent.append(table)
    temp_tables: list[Table] = []
    for i in range(profile.n_tables - n_permanent):
        created = int(table_rng.integers(0, max(1, horizon_days - 3)))
        lifespan = int(table_rng.integers(2, 15))
        table = _make_table(
            f"tmp{i}",
            table_rng,
            profile,
            created_day=created,
            dropped_day=created + lifespan,
        )
        catalog.add_table(table)
        temp_tables.append(table)

    templates: list[QueryTemplate] = []
    # At least one template must stay over permanent tables so every day has
    # live templates to sample from.
    n_temp_templates = min(
        profile.n_templates - 1, int(round(profile.n_templates * profile.temp_table_ratio))
    )
    for i in range(profile.n_templates):
        if i < n_temp_templates and temp_tables:
            # Templates over a temp table (plus permanent ones).
            temp = temp_tables[int(template_rng.integers(0, len(temp_tables)))]
            pool = [temp] + permanent
        else:
            pool = permanent
        templates.append(
            _make_template(f"{profile.name}-tpl{i:03d}", catalog, pool, template_rng, profile)
        )

    stats = StatisticsView(
        catalog,
        availability=profile.stats_availability,
        staleness=0.15,
        rng=spawn_rng(rng, "stats-view"),
    )
    cluster = Cluster(profile.n_machines, rng=spawn_rng(rng, "prod-cluster"))
    executor = Executor(catalog, cluster)
    optimizer = NativeOptimizer(catalog, stats)
    repository = QueryRepository(profile.name)

    return ProjectWorkload(
        profile=profile,
        catalog=catalog,
        stats=stats,
        templates=templates,
        cluster=cluster,
        executor=executor,
        optimizer=optimizer,
        repository=repository,
        rng=spawn_rng(rng, "workload"),
    )


def profile_population(
    n_projects: int, *, seed: int = 7, name_prefix: str = "proj"
) -> list[ProjectProfile]:
    """A heterogeneous population of project profiles, for fleet studies
    (project selection, Section 7.3)."""
    rng = np.random.default_rng(seed)
    profiles = []
    for i in range(n_projects):
        profiles.append(
            ProjectProfile(
                name=f"{name_prefix}{i:04d}",
                seed=int(rng.integers(0, 2**31 - 1)),
                n_tables=int(rng.integers(8, 80)),
                avg_columns_per_table=float(rng.uniform(8, 30)),
                n_templates=int(rng.integers(6, 50)),
                queries_per_day=float(rng.lognormal(math.log(60), 1.5)),
                query_growth=float(rng.uniform(0.9, 1.1)),
                stats_availability=float(rng.beta(1.5, 3.0)),
                temp_table_ratio=float(rng.beta(2.0, 4.0)),
                max_join_tables=int(rng.integers(2, 7)),
                row_scale=float(rng.lognormal(math.log(3e5), 1.8)),
                skew_level=float(rng.uniform(0.2, 1.3)),
                agg_probability=float(rng.uniform(0.3, 0.9)),
                noise_sigma=float(rng.uniform(0.06, 0.25)),
            )
        )
    return profiles
