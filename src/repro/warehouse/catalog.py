"""Catalog: projects, partitioned tables, and columns with known distributions.

The catalog is the ground truth of the simulated warehouse.  Column value
distributions are Zipf-like over integer domains, which lets the simulator
compute *true* selectivities and join cardinalities analytically.  The native
optimizer never sees this ground truth directly: it goes through a
:class:`repro.warehouse.statistics.StatisticsView`, which may report missing
or stale statistics (challenge C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils import zipf_cdf, zipf_pmf

__all__ = ["Column", "Table", "Catalog"]


@dataclass(frozen=True)
class Column:
    """A column with a Zipf(s) distribution over ``ndv`` distinct values.

    Values are identified by frequency rank (1 = most frequent).  ``skew`` is
    the Zipf exponent; 0 means uniform.
    """

    name: str
    table: str
    ndv: int
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.ndv < 1:
            raise ValueError(f"column {self.name}: ndv must be >= 1, got {self.ndv}")
        if self.skew < 0:
            raise ValueError(f"column {self.name}: skew must be >= 0, got {self.skew}")

    @property
    def qualified_name(self) -> str:
        return f"{self.table}.{self.name}"

    def selectivity_eq(self, rank: int) -> float:
        """True selectivity of ``col = value`` where value has frequency rank."""
        return zipf_pmf(rank, self.ndv, self.skew)

    def selectivity_range(self, fraction: float) -> float:
        """True selectivity of a range predicate covering the top ``fraction``
        of the rank domain (e.g. ``col < v`` for a value at that quantile)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        rank = max(0, int(round(fraction * self.ndv)))
        return zipf_cdf(rank, self.ndv, self.skew)


@dataclass
class Table:
    """A logically partitioned table.

    ``created_day``/``dropped_day`` model table lifespan: MaxCompute projects
    create and drop temporal tables frequently, which matters for the
    project-selection rule R3 (stable_table_ratio).
    """

    name: str
    n_rows: int
    n_partitions: int
    columns: list[Column] = field(default_factory=list)
    created_day: int = 0
    dropped_day: int | None = None

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ValueError(f"table {self.name}: n_rows must be >= 1")
        if self.n_partitions < 1:
            raise ValueError(f"table {self.name}: n_partitions must be >= 1")

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"table {self.name} has no column {name!r}")

    def lifespan(self, horizon_day: int) -> int:
        """Lifespan in days as of ``horizon_day`` (Appendix D.1, LifeSpan(t))."""
        end = self.dropped_day if self.dropped_day is not None else horizon_day
        return max(0, end - self.created_day)

    def is_live(self, day: int) -> bool:
        if day < self.created_day:
            return False
        return self.dropped_day is None or day < self.dropped_day


class Catalog:
    """All tables of one project, addressable by name."""

    def __init__(self, project: str, tables: list[Table] | None = None) -> None:
        self.project = project
        self._tables: dict[str, Table] = {}
        for table in tables or []:
            self.add_table(table)

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise ValueError(f"duplicate table {table.name!r} in project {self.project}")
        self._tables[table.name] = table

    def drop_table(self, name: str, day: int) -> None:
        self.table(name).dropped_day = day

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"project {self.project} has no table {name!r}") from None

    def column(self, qualified_name: str) -> Column:
        table_name, _, col_name = qualified_name.partition(".")
        return self.table(table_name).column(col_name)

    @property
    def tables(self) -> list[Table]:
        return list(self._tables.values())

    @property
    def n_tables(self) -> int:
        return len(self._tables)

    @property
    def n_columns(self) -> int:
        return sum(t.n_columns for t in self._tables.values())

    def live_tables(self, day: int) -> list[Table]:
        return [t for t in self._tables.values() if t.is_live(day)]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __repr__(self) -> str:
        return (
            f"Catalog(project={self.project!r}, n_tables={self.n_tables}, "
            f"n_columns={self.n_columns})"
        )
