"""Tunable optimizer flags: the Bao-style steering knobs.

MaxCompute exposes 75 flags across six categories; the paper restricts LOAM's
plan explorer to six expert-selected flags spanning join, shuffling, spool,
and filter-related optimizations, plus Lero-style cardinality scaling for
subqueries with at least three inputs (Section 3).  We model the same
six-flag surface:

===========================  ==========  ====================================
Flag                         Category    Effect
===========================  ==========  ====================================
``prefer_merge_join``        join        force sort-merge joins (wins when a
                                         hash build side would spill)
``disable_broadcast_join``   join        never broadcast (avoids broadcast
                                         disasters caused by underestimated
                                         build sides)
``shuffle_removal``          shuffling   reuse an input's partitioning when
                                         it already satisfies a downstream
                                         co-partitioning requirement
``partial_aggregation``      data flow   pre-aggregate below the shuffle
``enable_spool``             spool       materialize the join result before
                                         a final aggregation
``join_filter_pushdown``     filter      derive a semi-join filter from a
                                         predicated side of a join onto the
                                         other side's scan
===========================  ==========  ====================================

Without accurate statistics the native optimizer leaves the rule-like flags
off and keeps the syntactic join order — exactly the conservatism Section
2.1 describes — which is what creates improvement space for steering.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["OptimizerFlags", "OPTIMIZER_FLAGS", "CARDINALITY_SCALES"]


@dataclass(frozen=True)
class OptimizerFlags:
    prefer_merge_join: bool = False
    disable_broadcast_join: bool = False
    shuffle_removal: bool = False
    partial_aggregation: bool = False
    enable_spool: bool = False
    join_filter_pushdown: bool = False

    def toggled(self, name: str) -> "OptimizerFlags":
        """Return a copy with flag ``name`` flipped."""
        if name not in OPTIMIZER_FLAGS:
            raise ValueError(f"unknown optimizer flag {name!r}")
        return replace(self, **{name: not getattr(self, name)})

    def enabled(self) -> tuple[str, ...]:
        return tuple(f.name for f in fields(self) if getattr(self, f.name))

    def signature(self) -> tuple:
        return tuple(getattr(self, f.name) for f in fields(self))


OPTIMIZER_FLAGS: tuple[str, ...] = tuple(f.name for f in fields(OptimizerFlags))

#: Lero-style cardinality scaling factors applied to subqueries with >= 3
#: inputs (Section 3); each produces one extra candidate plan.
CARDINALITY_SCALES: tuple[float, ...] = (0.1, 10.0)
