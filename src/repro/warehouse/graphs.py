"""Graph views of plans, stages, and join structures (networkx).

Analysis utilities used by notebooks, debugging sessions, and the project
Ranker's diagnostics: convert MiniDW structures into ``networkx`` graphs so
standard graph algorithms (critical paths, topology checks, centrality)
apply directly.
"""

from __future__ import annotations

import networkx as nx

from repro.warehouse.plan import PhysicalPlan
from repro.warehouse.query import Query
from repro.warehouse.stages import StageGraph

__all__ = ["plan_to_networkx", "stage_graph_to_networkx", "join_graph", "critical_stage_path"]


def plan_to_networkx(plan: PhysicalPlan) -> nx.DiGraph:
    """Operator tree as a DiGraph (edges parent -> child)."""
    graph = nx.DiGraph()
    for node in plan.iter_nodes():
        graph.add_node(
            node.node_id,
            op_type=node.op_type,
            est_rows=node.est_rows,
            true_rows=node.true_rows,
            stage_id=node.stage_id,
        )
        for child in node.children:
            graph.add_edge(node.node_id, child.node_id)
    return graph


def stage_graph_to_networkx(stages: StageGraph, *, field_name: str = "true_rows") -> nx.DiGraph:
    """Stage dependency DAG (edges upstream -> downstream), annotated with
    intrinsic cost and parallelism."""
    graph = nx.DiGraph()
    for stage in stages.stages:
        graph.add_node(
            stage.stage_id,
            n_operators=stage.n_operators,
            intrinsic_cost=stage.intrinsic_cost(field_name=field_name),
            parallelism=stage.parallelism(field_name=field_name),
        )
    for stage in stages.stages:
        for upstream in stage.upstream:
            graph.add_edge(upstream, stage.stage_id)
    return graph


def join_graph(query: Query) -> nx.Graph:
    """The query's join graph: tables as nodes, equi-joins as edges."""
    graph = nx.Graph()
    graph.add_nodes_from(query.tables)
    for join in query.joins:
        graph.add_edge(
            join.left_table,
            join.right_table,
            left_column=join.left_column,
            right_column=join.right_column,
            form=join.form,
        )
    return graph


def critical_stage_path(stages: StageGraph, *, field_name: str = "true_rows") -> tuple[list[int], float]:
    """The most expensive dependency chain of stages: the latency-critical
    path through the stage DAG (per-instance work as edge weights)."""
    graph = stage_graph_to_networkx(stages, field_name=field_name)
    if graph.number_of_nodes() == 0:
        return [], 0.0

    def stage_weight(stage_id: int) -> float:
        data = graph.nodes[stage_id]
        return data["intrinsic_cost"] / max(1, data["parallelism"])

    best: dict[int, tuple[float, list[int]]] = {}
    for stage_id in nx.topological_sort(graph):
        incoming = [best[p] for p in graph.predecessors(stage_id)]
        base_cost, base_path = max(incoming, default=(0.0, []), key=lambda t: t[0])
        best[stage_id] = (base_cost + stage_weight(stage_id), base_path + [stage_id])
    cost, path = max(best.values(), key=lambda t: t[0])
    return path, cost
