"""Physical plan operators.

A physical plan is a tree of :class:`PlanNode` objects.  The operator set
mirrors the cost-impacting operator classes the paper encodes (Section 4):
table scans, joins (hash/merge/broadcast), aggregations (hash/sort), filters
and Calc, plus the plumbing operators (Project, Sort, Exchange, Spool,
Limit) that shape stage decomposition.

Nodes carry mutable annotations filled in by later phases:

* ``est_rows`` — the native optimizer's cardinality estimate;
* ``true_rows`` — ground-truth cardinality (computed by the executor);
* ``stage_id`` — assigned by stage decomposition;
* ``env`` — the stage-level execution-environment sample, logged after
  execution (this is what LOAM's encoder consumes for training plans).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.warehouse.query import Predicate

__all__ = [
    "OPERATOR_TYPES",
    "JOIN_OPERATORS",
    "AGGREGATE_OPERATORS",
    "FILTERING_OPERATORS",
    "PlanNode",
    "TableScanNode",
    "FilterNode",
    "CalcNode",
    "ProjectNode",
    "JoinNode",
    "AggregateNode",
    "SortNode",
    "ExchangeNode",
    "SpoolNode",
    "LimitNode",
]

#: Every operator type the simulator can emit, in canonical encoding order.
OPERATOR_TYPES = (
    "TableScan",
    "Filter",
    "Calc",
    "Project",
    "HashJoin",
    "MergeJoin",
    "BroadcastHashJoin",
    "HashAggregate",
    "SortAggregate",
    "Sort",
    "Exchange",
    "Spool",
    "Limit",
)

JOIN_OPERATORS = ("HashJoin", "MergeJoin", "BroadcastHashJoin")
AGGREGATE_OPERATORS = ("HashAggregate", "SortAggregate")
FILTERING_OPERATORS = ("Filter", "Calc")

_node_counter = itertools.count()


@dataclass
class PlanNode:
    """Base class for all physical operators."""

    children: list["PlanNode"] = field(default_factory=list)
    est_rows: float = 0.0
    true_rows: float = 0.0
    stage_id: int = -1
    env: Optional[tuple[float, float, float, float]] = None
    n_base_tables: int = 0  # filled by cardinality annotation
    node_id: int = field(default_factory=lambda: next(_node_counter))

    @property
    def op_type(self) -> str:
        raise NotImplementedError

    @property
    def left(self) -> Optional["PlanNode"]:
        return self.children[0] if self.children else None

    @property
    def right(self) -> Optional["PlanNode"]:
        return self.children[1] if len(self.children) > 1 else None

    def iter_nodes(self) -> Iterator["PlanNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    def iter_postorder(self) -> Iterator["PlanNode"]:
        for child in self.children:
            yield from child.iter_postorder()
        yield self

    def n_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def attribute_signature(self) -> tuple:
        """Operator-specific attributes for structural fingerprinting."""
        return ()

    def structural_signature(self) -> tuple:
        """A hashable fingerprint of the subtree (ignores annotations)."""
        return (
            self.op_type,
            self.attribute_signature(),
            tuple(child.structural_signature() for child in self.children),
        )

    def clone(self) -> "PlanNode":
        """Deep copy of the subtree, dropping execution annotations."""
        copy = self.__class__(**self._ctor_kwargs())
        copy.children = [child.clone() for child in self.children]
        copy.est_rows = self.est_rows
        return copy

    def _ctor_kwargs(self) -> dict:
        return {}

    def __repr__(self) -> str:
        return f"{self.op_type}(rows~{self.est_rows:.0f}, children={len(self.children)})"


@dataclass
class TableScanNode(PlanNode):
    table: str = ""
    n_partitions: int = 1
    n_columns: int = 1
    predicates: tuple[Predicate, ...] = ()  # pushed-down filters

    @property
    def op_type(self) -> str:
        return "TableScan"

    def attribute_signature(self) -> tuple:
        return (
            self.table,
            self.n_partitions,
            self.n_columns,
            tuple((p.qualified_column, p.op, round(p.value, 6)) for p in self.predicates),
        )

    def _ctor_kwargs(self) -> dict:
        return {
            "table": self.table,
            "n_partitions": self.n_partitions,
            "n_columns": self.n_columns,
            "predicates": self.predicates,
        }


@dataclass
class FilterNode(PlanNode):
    predicates: tuple[Predicate, ...] = ()

    @property
    def op_type(self) -> str:
        return "Filter"

    def attribute_signature(self) -> tuple:
        return tuple((p.qualified_column, p.op, round(p.value, 6)) for p in self.predicates)

    def _ctor_kwargs(self) -> dict:
        return {"predicates": self.predicates}


@dataclass
class CalcNode(PlanNode):
    """Combined filtering + projection, as in MaxCompute's Calc operator."""

    predicates: tuple[Predicate, ...] = ()
    projected_columns: tuple[str, ...] = ()

    @property
    def op_type(self) -> str:
        return "Calc"

    def attribute_signature(self) -> tuple:
        return (
            tuple((p.qualified_column, p.op, round(p.value, 6)) for p in self.predicates),
            self.projected_columns,
        )

    def _ctor_kwargs(self) -> dict:
        return {"predicates": self.predicates, "projected_columns": self.projected_columns}


@dataclass
class ProjectNode(PlanNode):
    columns: tuple[str, ...] = ()

    @property
    def op_type(self) -> str:
        return "Project"

    def attribute_signature(self) -> tuple:
        return self.columns

    def _ctor_kwargs(self) -> dict:
        return {"columns": self.columns}


@dataclass
class JoinNode(PlanNode):
    """A physical join.  ``algorithm`` selects the operator flavour."""

    algorithm: str = "hash"  # hash | merge | broadcast
    form: str = "inner"
    left_key: str = ""  # qualified column name on the left (build) side
    right_key: str = ""

    @property
    def op_type(self) -> str:
        return {
            "hash": "HashJoin",
            "merge": "MergeJoin",
            "broadcast": "BroadcastHashJoin",
        }[self.algorithm]

    def attribute_signature(self) -> tuple:
        return (self.algorithm, self.form, self.left_key, self.right_key)

    def _ctor_kwargs(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "form": self.form,
            "left_key": self.left_key,
            "right_key": self.right_key,
        }


@dataclass
class AggregateNode(PlanNode):
    kind: str = "hash"  # hash | sort
    func: str = "count"
    agg_column: str = ""
    group_by: tuple[str, ...] = ()
    partial: bool = False  # True for a pre-shuffle partial aggregation

    @property
    def op_type(self) -> str:
        return "HashAggregate" if self.kind == "hash" else "SortAggregate"

    def attribute_signature(self) -> tuple:
        return (self.kind, self.func, self.agg_column, self.group_by, self.partial)

    def _ctor_kwargs(self) -> dict:
        return {
            "kind": self.kind,
            "func": self.func,
            "agg_column": self.agg_column,
            "group_by": self.group_by,
            "partial": self.partial,
        }


@dataclass
class SortNode(PlanNode):
    keys: tuple[str, ...] = ()

    @property
    def op_type(self) -> str:
        return "Sort"

    def attribute_signature(self) -> tuple:
        return self.keys

    def _ctor_kwargs(self) -> dict:
        return {"keys": self.keys}


@dataclass
class ExchangeNode(PlanNode):
    """A data reshuffle: the stage boundary operator."""

    mode: str = "shuffle"  # shuffle | broadcast | gather
    keys: tuple[str, ...] = ()

    @property
    def op_type(self) -> str:
        return "Exchange"

    def attribute_signature(self) -> tuple:
        return (self.mode, self.keys)

    def _ctor_kwargs(self) -> dict:
        return {"mode": self.mode, "keys": self.keys}


@dataclass
class SpoolNode(PlanNode):
    """Materializes a shared subexpression for reuse."""

    shared_id: str = ""

    @property
    def op_type(self) -> str:
        return "Spool"

    def attribute_signature(self) -> tuple:
        return (self.shared_id,)

    def _ctor_kwargs(self) -> dict:
        return {"shared_id": self.shared_id}


@dataclass
class LimitNode(PlanNode):
    limit: int = 1000

    @property
    def op_type(self) -> str:
        return "Limit"

    def attribute_signature(self) -> tuple:
        return (self.limit,)

    def _ctor_kwargs(self) -> dict:
        return {"limit": self.limit}
