"""Plan decomposition into shuffle-bounded stages.

MaxCompute decomposes a physical plan into a tree of stages at operators
requiring data reshuffling (Section 2.1).  Each stage is an intra-machine
pipeline of operators; edges are data dependencies.  The stage is the atomic
unit of resource allocation, so all plan nodes within one stage share one
execution-environment sample — exactly the granularity LOAM's environment
features are logged at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.warehouse.costmodel import COST, CostConstants, intrinsic_node_cost, stage_parallelism
from repro.warehouse.operators import ExchangeNode, PlanNode
from repro.warehouse.plan import PhysicalPlan

__all__ = ["Stage", "StageGraph", "decompose_into_stages"]


@dataclass
class Stage:
    """A pipeline of operators executed by one set of parallel instances."""

    stage_id: int
    nodes: list[PlanNode] = field(default_factory=list)
    upstream: list[int] = field(default_factory=list)  # stages this one consumes

    @property
    def n_operators(self) -> int:
        return len(self.nodes)

    def input_rows(self, *, field_name: str = "true_rows") -> float:
        """Rows entering the stage: the max over its leaf operators' outputs
        (scans read raw rows; exchanges deliver their producer's output)."""
        rows = 1.0
        for node in self.nodes:
            raw = getattr(node, f"raw_{field_name}", None)
            rows = max(rows, raw if raw is not None else getattr(node, field_name))
        return rows

    def intrinsic_cost(self, *, field_name: str = "true_rows", constants: CostConstants = COST) -> float:
        return sum(
            intrinsic_node_cost(node, field=field_name, constants=constants)
            for node in self.nodes
        )

    def parallelism(self, *, field_name: str = "true_rows", constants: CostConstants = COST) -> int:
        return stage_parallelism(self.input_rows(field_name=field_name), constants)


@dataclass
class StageGraph:
    """All stages of one plan, topologically ordered (upstream first)."""

    stages: list[Stage]

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    def stage(self, stage_id: int) -> Stage:
        return self.stages[stage_id]

    def topological_order(self) -> list[Stage]:
        return self.stages  # construction order is already upstream-first


def decompose_into_stages(plan: PhysicalPlan) -> StageGraph:
    """Split the plan at Exchange boundaries.

    An Exchange belongs to its *producer* stage (the shuffle write); the
    consumer stage starts above it.  Every node's ``stage_id`` annotation is
    set as a side effect.
    """
    stages: list[Stage] = []

    def new_stage() -> Stage:
        stage = Stage(stage_id=len(stages))
        stages.append(stage)
        return stage

    def assign(node: PlanNode, stage: Stage) -> None:
        # Children first so stage ids are upstream-first (children of an
        # Exchange land in their own earlier stage).
        for child in node.children:
            if isinstance(node, ExchangeNode):
                # The exchange and everything below it is the producer side.
                assign(child, stage)
            elif isinstance(child, ExchangeNode):
                child_stage = new_stage()
                assign(child, child_stage)
                stage.upstream.append(child_stage.stage_id)
            else:
                assign(child, stage)
        node.stage_id = stage.stage_id
        stage.nodes.append(node)

    root_stage = new_stage()
    assign(plan.root, root_stage)

    # Reorder so upstream stages come first (root stage was created first).
    order: list[int] = []
    seen: set[int] = set()

    def visit(stage_id: int) -> None:
        if stage_id in seen:
            return
        seen.add(stage_id)
        for up in stages[stage_id].upstream:
            visit(up)
        order.append(stage_id)

    visit(0)
    for stage in stages:
        visit(stage.stage_id)

    remap = {old: new for new, old in enumerate(order)}
    reordered = [stages[old] for old in order]
    for stage in reordered:
        stage.stage_id = remap[stage.stage_id]
        stage.upstream = [remap[u] for u in stage.upstream]
        for node in stage.nodes:
            node.stage_id = stage.stage_id
    return StageGraph(stages=reordered)
