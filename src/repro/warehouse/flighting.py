"""The flighting environment: replaying plans without disrupting users.

MaxCompute's flighting environment can replay user query plans for
measurement without compromising privacy or normal service (Section 3).
LOAM uses it to obtain ground-truth costs for held-out test queries before
deciding whether a trained predictor is fit for production.

Our simulated flighting environment owns a dedicated cluster so replays do
not perturb the production cluster's load, and supports both free-running
replays (fresh sampled environments) and pinned-environment evaluation for
controlled studies.
"""

from __future__ import annotations

import numpy as np

from repro.utils import spawn_rng
from repro.warehouse.catalog import Catalog
from repro.warehouse.cluster import Cluster, EnvironmentSample
from repro.warehouse.executor import ExecutionRecord, Executor
from repro.warehouse.plan import PhysicalPlan

__all__ = ["FlightingEnvironment"]


class FlightingEnvironment:
    """Replays plans on an isolated cluster."""

    def __init__(
        self,
        catalog: Catalog,
        *,
        n_machines: int = 120,
        rng: np.random.Generator | None = None,
        noise_sigma: float = 0.12,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        self._rng = spawn_rng(rng, "flighting", catalog.project)
        self.cluster = Cluster(n_machines, rng=spawn_rng(rng, "flighting-cluster"))
        self.executor = Executor(catalog, self.cluster)
        self.noise_sigma = noise_sigma

    def replay(self, plan: PhysicalPlan, *, n_runs: int = 3) -> list[ExecutionRecord]:
        """Execute ``plan`` ``n_runs`` times under evolving load."""
        if n_runs < 1:
            raise ValueError("n_runs must be >= 1")
        records = []
        for _ in range(n_runs):
            # Warm-up ticks decorrelate consecutive replays.
            self.cluster.advance(5)
            records.append(
                self.executor.execute(
                    plan.clone() if plan.root.env is not None else plan,
                    rng=self._rng,
                    noise_sigma=self.noise_sigma,
                )
            )
        return records

    def measure_cost(self, plan: PhysicalPlan, *, n_runs: int = 3) -> float:
        """Average end-to-end CPU cost across replays — the paper's
        measurement protocol (each candidate executed multiple times)."""
        records = self.replay(plan, n_runs=n_runs)
        return float(np.mean([r.cpu_cost for r in records]))

    def sample_costs(self, plan: PhysicalPlan, n_samples: int) -> np.ndarray:
        """Cost samples for distribution fitting (Appendix E.1)."""
        records = self.replay(plan, n_runs=n_samples)
        return np.array([r.cpu_cost for r in records])

    def cost_under_environment(
        self, plan: PhysicalPlan, env: EnvironmentSample, *, noise: float = 1.0
    ) -> float:
        """Deterministic C_{E=e}(P) for a pinned environment instance."""
        return self.executor.cost_under_environment(plan, env, noise=noise)
