"""A SQL front-end for MiniDW: the compilation phase of Figure 1.

Queries submitted to MaxCompute are SQL statements; MiniDW accepts a
dialect covering the workload shapes the simulator models:

.. code-block:: sql

    SELECT SUM(t0.attr1)
    FROM t0
    JOIN t1 ON t0.key0 = t1.pk
    LEFT JOIN t2 ON t1.key1 = t2.key0
    WHERE t0.attr2 = 0.35 AND t1.attr0 < 0.8
    GROUP BY t0.key0

Notes on semantics:

* predicate literals are *normalized parameters* in [0, 1] — the rank
  fraction form used throughout the simulator (see
  :class:`repro.warehouse.query.Predicate`);
* ``BETWEEN x`` takes the predicate's centre point (the simulator models a
  fixed ±0.1 band), and ``LIKE x`` its coarse selectivity knob;
* table sampling ``TABLESAMPLE (p PERCENT)`` maps to the partition fraction.

:func:`parse_sql` produces a :class:`~repro.warehouse.query.Query`;
:func:`format_sql` is its inverse (round-trip stable up to whitespace).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.warehouse.query import AGG_FUNCS, AggregateSpec, JoinSpec, Predicate, Query

__all__ = ["parse_sql", "format_sql", "SqlSyntaxError"]


class SqlSyntaxError(ValueError):
    """Raised when a statement does not conform to the MiniDW dialect."""


_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),.*])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "from",
    "join",
    "left",
    "right",
    "full",
    "inner",
    "outer",
    "on",
    "where",
    "and",
    "group",
    "by",
    "between",
    "like",
    "as",
    "tablesample",
    "percent",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | ident | keyword | op | punct | end
    text: str
    position: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    while index < len(sql):
        match = _TOKEN_RE.match(sql, index)
        if match is None:
            raise SqlSyntaxError(f"unexpected character {sql[index]!r} at offset {index}")
        index = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "punct"
        text = match.group()
        if kind == "ident" and text.lower() in _KEYWORDS:
            kind, text = "keyword", text.lower()
        tokens.append(_Token(kind, text, match.start()))
    tokens.append(_Token("end", "", len(sql)))
    return tokens


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise SqlSyntaxError(
                f"expected {want!r} at offset {token.position}, found {token.text!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar -----------------------------------------------------------

    def parse(self, *, query_id: str, project: str, template_id: str) -> Query:
        self.expect("keyword", "select")
        aggregate_head = self._parse_select_list()
        self.expect("keyword", "from")
        tables: list[str] = []
        fractions: dict[str, float] = {}
        first_table, first_fraction = self._parse_table_ref()
        tables.append(first_table)
        if first_fraction is not None:
            fractions[first_table] = first_fraction

        joins: list[JoinSpec] = []
        while True:
            form = self._parse_join_form()
            if form is None:
                break
            table, fraction = self._parse_table_ref()
            if table in tables:
                raise SqlSyntaxError(f"table {table!r} joined twice (aliases unsupported)")
            tables.append(table)
            if fraction is not None:
                fractions[table] = fraction
            self.expect("keyword", "on")
            left_col = self._parse_column()
            self.expect("op", "=")
            right_col = self._parse_column()
            joins.append(
                JoinSpec(
                    left_table=left_col[0],
                    left_column=left_col[1],
                    right_table=right_col[0],
                    right_column=right_col[1],
                    form=form,
                )
            )

        predicates: list[Predicate] = []
        if self.accept("keyword", "where"):
            predicates.append(self._parse_predicate())
            while self.accept("keyword", "and"):
                predicates.append(self._parse_predicate())

        group_by: tuple[str, ...] = ()
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            columns = [self._parse_column()]
            while self.accept("punct", ","):
                columns.append(self._parse_column())
            group_by = tuple(f"{t}.{c}" for t, c in columns)

        self.expect("end")

        aggregate = None
        if aggregate_head is not None:
            func, (table, column) = aggregate_head
            aggregate = AggregateSpec(
                func=func, table=table, agg_column=column, group_by=group_by
            )
        elif group_by:
            raise SqlSyntaxError("GROUP BY requires an aggregate in the SELECT list")

        return Query(
            query_id=query_id,
            project=project,
            template_id=template_id,
            tables=tuple(tables),
            joins=tuple(joins),
            predicates=tuple(predicates),
            aggregate=aggregate,
            partition_fractions=fractions,
        )

    def _parse_select_list(self) -> tuple[str, tuple[str, str]] | None:
        """Either ``*`` or a single ``FUNC(table.column)`` aggregate."""
        if self.accept("punct", "*"):
            return None
        token = self.expect("ident")
        func = token.text.lower()
        if func not in AGG_FUNCS:
            raise SqlSyntaxError(
                f"unsupported select item {token.text!r} at offset {token.position} "
                f"(expected * or one of {', '.join(AGG_FUNCS)})"
            )
        self.expect("punct", "(")
        column = self._parse_column()
        self.expect("punct", ")")
        return func, column

    def _parse_join_form(self) -> str | None:
        if self.accept("keyword", "join"):
            return "inner"
        for form in ("left", "right", "full"):
            if self.accept("keyword", form):
                self.accept("keyword", "outer")
                self.expect("keyword", "join")
                return form
        if self.accept("keyword", "inner"):
            self.expect("keyword", "join")
            return "inner"
        return None

    def _parse_table_ref(self) -> tuple[str, float | None]:
        table = self.expect("ident").text
        fraction = None
        if self.accept("keyword", "tablesample"):
            self.expect("punct", "(")
            fraction = self._parse_number() / 100.0
            self.expect("keyword", "percent")
            self.expect("punct", ")")
            if not 0.0 < fraction <= 1.0:
                raise SqlSyntaxError("TABLESAMPLE percentage must be in (0, 100]")
        return table, fraction

    def _parse_column(self) -> tuple[str, str]:
        table = self.expect("ident").text
        self.expect("punct", ".")
        column = self.expect("ident").text
        return table, column

    def _parse_predicate(self) -> Predicate:
        table, column = self._parse_column()
        token = self.peek()
        if token.kind == "op":
            op = self.advance().text
            if op == "<>":
                op = "!="
            if op in ("<=", ">="):
                op = op[0]  # the simulator's range semantics are inclusive-ish
            value = self._parse_number()
            return Predicate(table=table, column=column, op=op, value=value)
        if self.accept("keyword", "between"):
            value = self._parse_number()
            return Predicate(table=table, column=column, op="between", value=value)
        if self.accept("keyword", "like"):
            value = self._parse_number()
            return Predicate(table=table, column=column, op="like", value=value)
        raise SqlSyntaxError(
            f"expected a comparison at offset {token.position}, found {token.text!r}"
        )

    def _parse_number(self) -> float:
        token = self.expect("number")
        return float(token.text)


def parse_sql(
    sql: str,
    *,
    query_id: str = "sql-query",
    project: str = "default",
    template_id: str = "adhoc",
) -> Query:
    """Compile one SELECT statement into a :class:`Query`."""
    return _Parser(sql).parse(query_id=query_id, project=project, template_id=template_id)


def format_sql(query: Query) -> str:
    """Render a :class:`Query` back to MiniDW SQL."""
    if query.aggregate is not None:
        agg = query.aggregate
        select = f"{agg.func.upper()}({agg.table}.{agg.agg_column})"
    else:
        select = "*"
    lines = [f"SELECT {select}", f"FROM {_table_ref(query, query.tables[0])}"]

    joined = {query.tables[0]}
    for table in query.tables[1:]:
        specs = [j for j in query.joins if j.touches(table) and (
            (j.left_table in joined) or (j.right_table in joined)
        )]
        if not specs:
            raise ValueError(f"cannot serialize query: table {table!r} has no join to emit")
        spec = specs[0]
        keyword = {"inner": "JOIN", "left": "LEFT JOIN", "right": "RIGHT JOIN", "full": "FULL JOIN"}[
            spec.form
        ]
        lines.append(
            f"{keyword} {_table_ref(query, table)} ON "
            f"{spec.left_table}.{spec.left_column} = {spec.right_table}.{spec.right_column}"
        )
        joined.add(table)

    if query.predicates:
        clauses = []
        for pred in query.predicates:
            if pred.op in ("between", "like"):
                clauses.append(f"{pred.qualified_column} {pred.op.upper()} {pred.value:g}")
            else:
                clauses.append(f"{pred.qualified_column} {pred.op} {pred.value:g}")
        lines.append("WHERE " + " AND ".join(clauses))

    if query.aggregate is not None and query.aggregate.group_by:
        lines.append("GROUP BY " + ", ".join(query.aggregate.group_by))
    return "\n".join(lines)


def _table_ref(query: Query, table: str) -> str:
    fraction = query.partition_fractions.get(table)
    if fraction is not None and fraction < 1.0:
        return f"{table} TABLESAMPLE ({fraction * 100:g} PERCENT)"
    return table
