"""Distributed execution: turning plans into environment-dependent CPU costs.

The executor reproduces the paper's observed cost statistics:

* stage-level resource allocation with load-dependent slowdown — the CPU
  cost of a stage scales roughly linearly with the load metrics of its
  allocated machines (Figure 5);
* multiplicative log-normal execution noise — recurring plans' costs follow
  a log-normal distribution (Figure 15, validated by a KS test);
* the combination yields relative standard deviations of up to ~50 % for
  recurring queries (Figure 1).
"""

from __future__ import annotations

import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.warehouse.catalog import Catalog
from repro.warehouse.cluster import Cluster, EnvironmentSample
from repro.warehouse.costmodel import COST, CostConstants, annotate_true_cardinalities
from repro.warehouse.plan import PhysicalPlan
from repro.warehouse.stages import StageGraph, decompose_into_stages

__all__ = ["environment_cost_factor", "StageExecution", "ExecutionRecord", "Executor"]

#: Linear sensitivity of stage cost to each normalized load feature:
#: (1 - CPU_IDLE), IO_WAIT, LOAD5 (log-normalized), MEM_USAGE.
ENV_SENSITIVITY = (0.9, 1.5, 0.6, 0.3)


def environment_cost_factor(env: EnvironmentSample) -> float:
    """Multiplicative slowdown induced by the execution environment.

    Roughly linear and monotone in each load metric, matching the paper's
    empirical observation (Section 5, Figure 5) that environmental features
    have a discernible, approximately linear influence on plan costs.
    """
    cpu_idle, io_wait, load5_norm, mem_usage = env.normalized()
    a_busy, a_io, a_load, a_mem = ENV_SENSITIVITY
    return (
        1.0
        + a_busy * (1.0 - cpu_idle)
        + a_io * io_wait
        + a_load * load5_norm
        + a_mem * mem_usage
    )


@dataclass(frozen=True)
class StageExecution:
    """Per-stage execution details, as logged to the query repository."""

    stage_id: int
    intrinsic_cost: float
    environment: EnvironmentSample
    env_factor: float
    noise: float
    parallelism: int

    @property
    def cpu_cost(self) -> float:
        return self.intrinsic_cost * self.env_factor * self.noise


@dataclass
class ExecutionRecord:
    """One completed query execution in the historical repository.

    Mirrors the logging phase of Section 2.1: plan, per-stage execution
    environments, end-to-end CPU cost, and latency.
    """

    query_id: str
    project: str
    template_id: str
    plan: PhysicalPlan
    cpu_cost: float
    latency: float
    day: int
    stages: list[StageExecution] = field(default_factory=list)

    @property
    def provenance(self) -> str:
        return self.plan.provenance

    @property
    def is_default(self) -> bool:
        return self.plan.is_default

    @property
    def n_stages(self) -> int:
        return len(self.stages)


class Executor:
    """Executes physical plans on a :class:`Cluster`."""

    def __init__(
        self,
        catalog: Catalog,
        cluster: Cluster,
        *,
        constants: CostConstants = COST,
    ) -> None:
        self.catalog = catalog
        self.cluster = cluster
        self.constants = constants
        #: Observers invoked with every completed :class:`ExecutionRecord` —
        #: the hook the model lifecycle's feedback loop attaches to
        #: (``ModelLifecycle.watch``, see docs/LIFECYCLE.md).  Kept as plain
        #: callables so the warehouse layer stays import-free of serving.
        #: A raising observer never aborts execution or starves the
        #: observers behind it: the exception is swallowed, counted in
        #: :attr:`observer_failures`, detailed in :attr:`observer_errors`,
        #: and reported through :attr:`telemetry` when one is attached.
        self.observers: list[Callable[[ExecutionRecord], None]] = []
        self.observer_failures = 0
        #: Most recent failures as ``(observer name, traceback text)``.
        self.observer_errors: deque[tuple[str, str]] = deque(maxlen=16)
        #: Duck-typed telemetry sink (``.counter(name).inc()``), normally a
        #: :class:`repro.gateway.telemetry.Telemetry`; kept untyped so the
        #: warehouse layer stays import-free of the gateway.
        self.telemetry = None

    def add_observer(self, callback: Callable[[ExecutionRecord], None]) -> None:
        self.observers.append(callback)

    def set_telemetry(self, telemetry) -> None:
        """Report observer failures to ``telemetry`` (any object exposing
        ``counter(name) -> obj`` with ``inc()``)."""
        self.telemetry = telemetry

    def _notify_observers(self, record: ExecutionRecord) -> None:
        for observer in list(self.observers):
            try:
                observer(record)
            except Exception:
                self.observer_failures += 1
                name = getattr(observer, "__qualname__", None) or repr(observer)
                self.observer_errors.append((name, traceback.format_exc(limit=8)))
                if self.telemetry is not None:
                    self.telemetry.counter(
                        "executor_observer_failures_total",
                        "execution observers that raised",
                    ).inc()

    def remove_observer(self, callback: Callable[[ExecutionRecord], None]) -> None:
        self.observers.remove(callback)

    def execute(
        self,
        plan: PhysicalPlan,
        *,
        rng: np.random.Generator,
        day: int = 0,
        noise_sigma: float = 0.12,
    ) -> ExecutionRecord:
        """Run ``plan`` once under the cluster's current (evolving) load."""
        annotate_true_cardinalities(plan.root, plan.query, self.catalog)
        stage_graph = decompose_into_stages(plan)
        stage_execs: list[StageExecution] = []
        latency = 0.0
        for stage in stage_graph.topological_order():
            self.cluster.advance(1)
            parallelism = stage.parallelism(constants=self.constants)
            machines = self.cluster.allocate(parallelism)
            env = self.cluster.stage_environment(machines)
            factor = environment_cost_factor(env)
            # E[lognormal(-s^2/2, s)] = 1: noise is unbiased.
            noise = float(rng.lognormal(-0.5 * noise_sigma**2, noise_sigma))
            intrinsic = stage.intrinsic_cost(constants=self.constants)
            stage_execs.append(
                StageExecution(
                    stage_id=stage.stage_id,
                    intrinsic_cost=intrinsic,
                    environment=env,
                    env_factor=factor,
                    noise=noise,
                    parallelism=parallelism,
                )
            )
            # All plan nodes in the stage share its environment (Section 4).
            features = env.normalized()
            for node in stage.nodes:
                node.env = features
            latency += intrinsic * factor * noise / parallelism
        cpu_cost = sum(se.cpu_cost for se in stage_execs)
        record = ExecutionRecord(
            query_id=plan.query.query_id,
            project=plan.query.project,
            template_id=plan.query.template_id,
            plan=plan,
            cpu_cost=cpu_cost,
            latency=latency,
            day=day,
            stages=stage_execs,
        )
        self._notify_observers(record)
        return record

    def cost_under_environment(
        self,
        plan: PhysicalPlan,
        env: EnvironmentSample,
        *,
        noise: float = 1.0,
    ) -> float:
        """Deterministic cost of ``plan`` when every stage runs under ``env``.

        Used by controlled experiments (Figure 5) and by oracle/deviance
        computations that need C_{E=e}(P) for a pinned environment instance.
        """
        annotate_true_cardinalities(plan.root, plan.query, self.catalog)
        stage_graph = decompose_into_stages(plan)
        factor = environment_cost_factor(env)
        total = 0.0
        for stage in stage_graph.topological_order():
            total += stage.intrinsic_cost(constants=self.constants) * factor * noise
        return total

    def intrinsic_cost(self, plan: PhysicalPlan) -> float:
        """Environment-free CPU work of the plan (the oracle's yardstick)."""
        annotate_true_cardinalities(plan.root, plan.query, self.catalog)
        stage_graph = decompose_into_stages(plan)
        return sum(
            stage.intrinsic_cost(constants=self.constants)
            for stage in stage_graph.topological_order()
        )
