"""Persistence: serializing queries, plans, and execution records.

The historical query repository is the data foundation LOAM trains on; in
production it outlives any single process.  This module round-trips MiniDW
structures through plain JSON (one record per line in a ``.jsonl`` file),
preserving everything the learned components consume: plan structure,
operator attributes, per-node logged environments, per-stage execution
details, and costs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.warehouse.cluster import EnvironmentSample
from repro.warehouse.executor import ExecutionRecord, StageExecution
from repro.warehouse.operators import (
    AggregateNode,
    CalcNode,
    ExchangeNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    SortNode,
    SpoolNode,
    TableScanNode,
)
from repro.warehouse.plan import PhysicalPlan
from repro.warehouse.query import AggregateSpec, JoinSpec, Predicate, Query
from repro.warehouse.repository import QueryRepository

__all__ = [
    "query_to_dict",
    "query_from_dict",
    "plan_to_dict",
    "plan_from_dict",
    "record_to_dict",
    "record_from_dict",
    "save_repository",
    "load_repository",
]

_NODE_CLASSES = {
    cls.__name__: cls
    for cls in (
        TableScanNode,
        FilterNode,
        CalcNode,
        ProjectNode,
        JoinNode,
        AggregateNode,
        SortNode,
        ExchangeNode,
        SpoolNode,
        LimitNode,
    )
}


def _predicate_to_dict(predicate: Predicate) -> dict:
    return {
        "table": predicate.table,
        "column": predicate.column,
        "op": predicate.op,
        "value": predicate.value,
    }


def _predicate_from_dict(data: dict) -> Predicate:
    return Predicate(**data)


def query_to_dict(query: Query) -> dict:
    return {
        "query_id": query.query_id,
        "project": query.project,
        "template_id": query.template_id,
        "tables": list(query.tables),
        "joins": [
            {
                "left_table": j.left_table,
                "left_column": j.left_column,
                "right_table": j.right_table,
                "right_column": j.right_column,
                "form": j.form,
            }
            for j in query.joins
        ],
        "predicates": [_predicate_to_dict(p) for p in query.predicates],
        "aggregate": None
        if query.aggregate is None
        else {
            "func": query.aggregate.func,
            "table": query.aggregate.table,
            "agg_column": query.aggregate.agg_column,
            "group_by": list(query.aggregate.group_by),
        },
        "partition_fractions": dict(query.partition_fractions),
        "submit_day": query.submit_day,
    }


def query_from_dict(data: dict) -> Query:
    aggregate = None
    if data["aggregate"] is not None:
        agg = data["aggregate"]
        aggregate = AggregateSpec(
            func=agg["func"],
            table=agg["table"],
            agg_column=agg["agg_column"],
            group_by=tuple(agg["group_by"]),
        )
    return Query(
        query_id=data["query_id"],
        project=data["project"],
        template_id=data["template_id"],
        tables=tuple(data["tables"]),
        joins=tuple(JoinSpec(**j) for j in data["joins"]),
        predicates=tuple(_predicate_from_dict(p) for p in data["predicates"]),
        aggregate=aggregate,
        partition_fractions=dict(data["partition_fractions"]),
        submit_day=data["submit_day"],
    )


def _node_to_dict(node: PlanNode) -> dict:
    kwargs = node._ctor_kwargs()
    for key, value in list(kwargs.items()):
        if key == "predicates":
            kwargs[key] = [_predicate_to_dict(p) for p in value]
        elif isinstance(value, tuple):
            kwargs[key] = list(value)
    return {
        "type": type(node).__name__,
        "kwargs": kwargs,
        "est_rows": node.est_rows,
        "true_rows": node.true_rows,
        "stage_id": node.stage_id,
        "env": list(node.env) if node.env is not None else None,
        "children": [_node_to_dict(child) for child in node.children],
    }


def _node_from_dict(data: dict) -> PlanNode:
    try:
        cls = _NODE_CLASSES[data["type"]]
    except KeyError:
        raise ValueError(f"unknown plan node type {data['type']!r}") from None
    kwargs = dict(data["kwargs"])
    for key, value in list(kwargs.items()):
        if key == "predicates":
            kwargs[key] = tuple(_predicate_from_dict(p) for p in value)
        elif key in ("projected_columns", "columns", "keys", "group_by") and isinstance(
            value, list
        ):
            kwargs[key] = tuple(value)
    node = cls(**kwargs)
    node.est_rows = data["est_rows"]
    node.true_rows = data["true_rows"]
    node.stage_id = data["stage_id"]
    node.env = tuple(data["env"]) if data["env"] is not None else None
    node.children = [_node_from_dict(child) for child in data["children"]]
    return node


def plan_to_dict(plan: PhysicalPlan) -> dict:
    return {
        "query": query_to_dict(plan.query),
        "provenance": plan.provenance,
        "root": _node_to_dict(plan.root),
    }


def plan_from_dict(data: dict) -> PhysicalPlan:
    return PhysicalPlan(
        root=_node_from_dict(data["root"]),
        query=query_from_dict(data["query"]),
        provenance=data["provenance"],
    )


def record_to_dict(record: ExecutionRecord) -> dict:
    return {
        "query_id": record.query_id,
        "project": record.project,
        "template_id": record.template_id,
        "plan": plan_to_dict(record.plan),
        "cpu_cost": record.cpu_cost,
        "latency": record.latency,
        "day": record.day,
        "stages": [
            {
                "stage_id": s.stage_id,
                "intrinsic_cost": s.intrinsic_cost,
                "environment": [
                    s.environment.cpu_idle,
                    s.environment.io_wait,
                    s.environment.load5,
                    s.environment.mem_usage,
                ],
                "env_factor": s.env_factor,
                "noise": s.noise,
                "parallelism": s.parallelism,
            }
            for s in record.stages
        ],
    }


def record_from_dict(data: dict) -> ExecutionRecord:
    stages = [
        StageExecution(
            stage_id=s["stage_id"],
            intrinsic_cost=s["intrinsic_cost"],
            environment=EnvironmentSample(*s["environment"]),
            env_factor=s["env_factor"],
            noise=s["noise"],
            parallelism=s["parallelism"],
        )
        for s in data["stages"]
    ]
    return ExecutionRecord(
        query_id=data["query_id"],
        project=data["project"],
        template_id=data["template_id"],
        plan=plan_from_dict(data["plan"]),
        cpu_cost=data["cpu_cost"],
        latency=data["latency"],
        day=data["day"],
        stages=stages,
    )


def save_repository(repository: QueryRepository, path: str | Path) -> Path:
    """Write all records as JSON lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in repository.records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")
    return path


def load_repository(path: str | Path, *, project: str | None = None) -> QueryRepository:
    """Rebuild a repository from JSON lines (project inferred if omitted)."""
    path = Path(path)
    records: list[ExecutionRecord] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(record_from_dict(json.loads(line)))
    if project is None:
        if not records:
            raise ValueError(f"{path} holds no records; pass project= explicitly")
        project = records[0].project
    repository = QueryRepository(project)
    repository.extend(records)
    return repository


def iter_records(path: str | Path) -> Iterable[ExecutionRecord]:
    """Stream records without materializing the whole repository."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield record_from_dict(json.loads(line))
