"""MiniDW: a simulated distributed multi-tenant data warehouse.

This subpackage is the substrate substituting for Alibaba MaxCompute in the
LOAM reproduction.  It provides:

* a catalog of projects, partitioned tables, and columns with known data
  distributions (:mod:`repro.warehouse.catalog`);
* optionally-missing statistics, reproducing challenge C2
  (:mod:`repro.warehouse.statistics`);
* a query model with parameterized templates (:mod:`repro.warehouse.query`);
* physical plans as operator trees (:mod:`repro.warehouse.operators`,
  :mod:`repro.warehouse.plan`);
* a native cost-based optimizer with tunable flags
  (:mod:`repro.warehouse.optimizer`, :mod:`repro.warehouse.flags`);
* plan decomposition into shuffle-bounded stages
  (:mod:`repro.warehouse.stages`);
* a cluster with dynamic per-machine load and a Fuxi-like scheduler,
  reproducing challenge C1 (:mod:`repro.warehouse.cluster`);
* an executor producing environment-dependent CPU costs and a historical
  query repository (:mod:`repro.warehouse.executor`,
  :mod:`repro.warehouse.repository`);
* a flighting environment for replaying plans
  (:mod:`repro.warehouse.flighting`);
* a workload/project generator (:mod:`repro.warehouse.workload`).
"""

from repro.warehouse.catalog import Catalog, Column, Table
from repro.warehouse.cluster import Cluster, EnvironmentSample
from repro.warehouse.executor import ExecutionRecord, Executor
from repro.warehouse.flags import CARDINALITY_SCALES, OPTIMIZER_FLAGS, OptimizerFlags
from repro.warehouse.flighting import FlightingEnvironment
from repro.warehouse.operators import PlanNode
from repro.warehouse.optimizer import NativeOptimizer
from repro.warehouse.plan import PhysicalPlan
from repro.warehouse.query import AggregateSpec, JoinSpec, Predicate, Query, QueryTemplate
from repro.warehouse.persistence import load_repository, save_repository
from repro.warehouse.repository import QueryRepository
from repro.warehouse.sql import format_sql, parse_sql
from repro.warehouse.stages import StageGraph, decompose_into_stages
from repro.warehouse.statistics import StatisticsView
from repro.warehouse.workload import ProjectProfile, ProjectWorkload, generate_project

__all__ = [
    "AggregateSpec",
    "CARDINALITY_SCALES",
    "Catalog",
    "Cluster",
    "Column",
    "EnvironmentSample",
    "ExecutionRecord",
    "Executor",
    "FlightingEnvironment",
    "JoinSpec",
    "NativeOptimizer",
    "OPTIMIZER_FLAGS",
    "OptimizerFlags",
    "PhysicalPlan",
    "PlanNode",
    "Predicate",
    "ProjectProfile",
    "ProjectWorkload",
    "Query",
    "QueryRepository",
    "QueryTemplate",
    "StageGraph",
    "StatisticsView",
    "Table",
    "decompose_into_stages",
    "format_sql",
    "generate_project",
    "load_repository",
    "parse_sql",
    "save_repository",
]
