"""The native cost-based query optimizer of the simulated warehouse.

The optimizer mirrors the behaviour Section 2.1 of the paper attributes to
MaxCompute's native optimizer:

* it is cost-based, exploring join orders and physical operator choices with
  an estimated-cardinality model;
* when column statistics are missing it falls back to coarse metadata-driven
  estimates (historical row counts, default selectivities), **disables join
  reordering**, and leaves statistics-hungry rules (partial aggregation,
  join-filter pushdown, shuffle removal) off — which is precisely where the
  improvement space for a steering learned optimizer comes from;
* its decisions can be steered by :class:`~repro.warehouse.flags.OptimizerFlags`
  and by Lero-style cardinality scaling, the two knob families LOAM's plan
  explorer uses.
"""

from __future__ import annotations

import math

from repro.warehouse.catalog import Catalog
from repro.warehouse.costmodel import (
    COST,
    CostConstants,
    EstimatedCardinalityModel,
    intrinsic_plan_cost,
)
from repro.warehouse.flags import OptimizerFlags
from repro.warehouse.operators import (
    AggregateNode,
    ExchangeNode,
    JoinNode,
    PlanNode,
    SortNode,
    SpoolNode,
    TableScanNode,
)
from repro.warehouse.plan import PhysicalPlan
from repro.warehouse.query import JoinSpec, Predicate, Query
from repro.warehouse.statistics import StatisticsView

__all__ = ["NativeOptimizer"]


class _SubPlan:
    """A partially built plan: the operator subtree plus its partitioning
    property (the equivalence class of columns the data is hash-partitioned
    on, or ``None`` when arbitrarily distributed)."""

    __slots__ = ("node", "tables", "partition_keys", "sorted_on", "stats_ok")

    def __init__(
        self,
        node: PlanNode,
        tables: frozenset[str],
        partition_keys: frozenset[str] | None = None,
        sorted_on: str | None = None,
        stats_ok: bool = False,
    ) -> None:
        self.node = node
        self.tables = tables
        self.partition_keys = partition_keys
        self.sorted_on = sorted_on
        #: True when every base table below has maintained column statistics,
        #: i.e. the optimizer may trust its estimates enough to apply
        #: statistics-hungry rules natively.
        self.stats_ok = stats_ok


class NativeOptimizer:
    """Cost-based optimizer over the simulated catalog."""

    def __init__(
        self,
        catalog: Catalog,
        stats: StatisticsView,
        *,
        constants: CostConstants = COST,
        broadcast_threshold: float = 50_000.0,
    ) -> None:
        self.catalog = catalog
        self.stats = stats
        self.constants = constants
        self.broadcast_threshold = broadcast_threshold

    # -- public API --------------------------------------------------------

    def optimize(
        self,
        query: Query,
        *,
        flags: OptimizerFlags | None = None,
        cardinality_scale: float = 1.0,
        provenance: str = "default",
    ) -> PhysicalPlan:
        """Produce a physical plan for ``query`` under the given knobs."""
        flags = flags or OptimizerFlags()
        model = EstimatedCardinalityModel(self.stats, cardinality_scale=cardinality_scale)
        # Physical-operator decisions (broadcast, spill avoidance) always use
        # unscaled estimates: cardinality scaling steers plan *structure*,
        # not safety-critical implementation choices.
        raw_model = (
            model
            if cardinality_scale == 1.0
            else EstimatedCardinalityModel(self.stats, cardinality_scale=1.0)
        )
        derived = self._derived_semijoin_filters(query, model, forced=flags.join_filter_pushdown)

        scans: dict[str, _SubPlan] = {}
        for table in query.tables:
            scan = self._build_scan(query, table, derived.get(table, ()))
            scans[table] = _SubPlan(
                scan, frozenset([table]), stats_ok=self.stats.has_column_stats(table)
            )

        order = self._join_order(query, scans, model, raw_model, cardinality_scale)
        current = scans[order[0]]
        for table in order[1:]:
            spec = self._connecting_join(query, current.tables, table)
            current = self._build_join(query, current, scans[table], spec, raw_model, flags)

        root = current.node
        if query.aggregate is not None:
            root = self._build_aggregation(query, current, model, flags)

        model.annotate(root, query, field="est_rows")
        plan = PhysicalPlan(
            root=root,
            query=query,
            provenance=provenance,
            knob_signature=(flags.signature(), cardinality_scale),
        )
        return plan

    def estimated_cost(self, plan: PhysicalPlan) -> float:
        """The optimizer's own rough cost of a plan (used for top-k pruning)."""
        model = EstimatedCardinalityModel(self.stats)
        model.annotate(plan.root, plan.query, field="est_rows")
        return intrinsic_plan_cost(plan.root, field="est_rows", constants=self.constants)

    # -- scans and derived filters -----------------------------------------

    def _build_scan(
        self, query: Query, table: str, derived_predicates: tuple[Predicate, ...]
    ) -> TableScanNode:
        table_meta = self.catalog.table(table)
        predicates = query.predicates_on(table) + tuple(derived_predicates)
        n_partitions = max(1, int(round(table_meta.n_partitions * query.partition_fraction(table))))
        return TableScanNode(
            table=table,
            n_partitions=n_partitions,
            n_columns=self._columns_accessed(query, table),
            predicates=predicates,
        )

    def _columns_accessed(self, query: Query, table: str) -> int:
        columns: set[str] = set()
        for pred in query.predicates_on(table):
            columns.add(pred.column)
        for join in query.joins:
            if join.touches(table):
                columns.add(join.column_for(table))
        agg = query.aggregate
        if agg is not None:
            if agg.table == table:
                columns.add(agg.agg_column)
            for qualified in agg.group_by:
                t, _, c = qualified.partition(".")
                if t == table:
                    columns.add(c)
        return max(1, len(columns))

    def _derived_semijoin_filters(
        self, query: Query, model: EstimatedCardinalityModel, *, forced: bool
    ) -> dict[str, tuple[Predicate, ...]]:
        """Join-filter pushdown: a heavily predicated side of a join emits a
        runtime filter on the other side's join column (Appendix D.2 calls
        this 'producing predicates from the smaller table to filter the
        larger one').

        Applied natively only when the source table has maintained column
        statistics *and* the estimated selectivity is confidently low; the
        steering flag forces it regardless (this rule is exactly the kind
        that Section 2.1 says gets disabled without reliable statistics).
        """
        derived: dict[str, list[Predicate]] = {}
        for join in query.joins:
            for src, dst in ((join.left_table, join.right_table), (join.right_table, join.left_table)):
                preds = query.predicates_on(src)
                if not preds:
                    continue
                if not forced and not self.stats.has_column_stats(src):
                    continue
                selectivity = 1.0
                for pred in preds:
                    selectivity *= model.selectivity(pred)
                threshold = 0.5 if forced else 0.2
                if selectivity >= threshold:
                    continue
                # A runtime semi-join filter only removes rows that would not
                # have joined, so its leverage is bounded in this model: it
                # keeps at least half the key domain, and only the strongest
                # filter per destination table applies (DESIGN.md notes).
                fraction = max(0.5, min(1.0, 3.0 * selectivity))
                candidate = Predicate(
                    table=dst, column=join.column_for(dst), op="<", value=fraction
                )
                existing = derived.get(dst)
                if existing is None or candidate.value < existing[0].value:
                    derived[dst] = [candidate]
        return {table: tuple(preds) for table, preds in derived.items()}

    # -- join ordering ------------------------------------------------------

    def _reordering_enabled(self, query: Query) -> bool:
        """Join reordering needs trustworthy statistics (Section 2.1: the
        rule is disabled when statistics are missing).  Cardinality scaling
        perturbs the order only where estimates exist to scale."""
        return all(self.stats.has_column_stats(t) for t in query.tables)

    def _join_order(
        self,
        query: Query,
        scans: dict[str, _SubPlan],
        model: EstimatedCardinalityModel,
        raw_model: EstimatedCardinalityModel,
        cardinality_scale: float,
    ) -> list[str]:
        if query.n_tables == 1:
            return list(query.tables)
        if not self._reordering_enabled(query):
            return list(query.tables)  # syntactic order (reordering disabled)

        order = self._greedy_order(query, scans, model)
        if cardinality_scale != 1.0 and order != list(query.tables):
            # Sanity check a steered order against the *unscaled* cost model:
            # if the optimizer's own estimates say it is much worse than the
            # syntactic order, the steering produced a drastically bad plan
            # and we fall back (the explorer's knobs are meant to be safe).
            steered_cost = self._order_estimated_cost(query, scans, order, raw_model)
            syntactic_cost = self._order_estimated_cost(
                query, scans, list(query.tables), raw_model
            )
            if steered_cost > 3.0 * syntactic_cost:
                return list(query.tables)
        return order

    def _greedy_order(
        self,
        query: Query,
        scans: dict[str, _SubPlan],
        model: EstimatedCardinalityModel,
    ) -> list[str]:
        """Left-deep greedy: start from the smallest scan, repeatedly add
        the connected table whose join output the model estimates smallest.
        Trial trees are annotated with the (possibly scaled) model, so
        cardinality scaling genuinely perturbs the chosen order."""
        scan_rows = {
            table: model.annotate(sub.node.clone(), query, field="est_rows")
            for table, sub in scans.items()
        }
        remaining = set(query.tables)
        order = [min(remaining, key=lambda t: (scan_rows[t], query.tables.index(t)))]
        remaining.discard(order[0])

        while remaining:
            connected = [
                t
                for t in remaining
                if query.joins_between(frozenset(order), frozenset([t]))
            ]
            if not connected:
                # Disconnected remainder can only happen with a broken join
                # graph, which Query validation rejects; guard anyway.
                connected = sorted(remaining, key=query.tables.index)
            best_table, best_rows = None, math.inf
            for t in connected:
                out_rows = self._order_estimated_rows(query, scans, [*order, t], model)
                if out_rows < best_rows:
                    best_table, best_rows = t, out_rows
            assert best_table is not None
            order.append(best_table)
            remaining.discard(best_table)
        return order

    def _order_estimated_rows(
        self,
        query: Query,
        scans: dict[str, _SubPlan],
        order: list[str],
        model: EstimatedCardinalityModel,
    ) -> float:
        tree = self._left_deep_tree(query, scans, order)
        return model.annotate(tree, query, field="est_rows")

    def _order_estimated_cost(
        self,
        query: Query,
        scans: dict[str, _SubPlan],
        order: list[str],
        model: EstimatedCardinalityModel,
    ) -> float:
        """Rough estimated cost of a left-deep hash-join tree in ``order``."""
        tree = self._left_deep_tree(query, scans, order)
        model.annotate(tree, query, field="est_rows")
        return intrinsic_plan_cost(tree, field="est_rows", constants=self.constants)

    def _left_deep_tree(
        self, query: Query, scans: dict[str, _SubPlan], order: list[str]
    ) -> PlanNode:
        tree: PlanNode = scans[order[0]].node.clone()
        joined = frozenset([order[0]])
        for table in order[1:]:
            spec = self._connecting_join(query, joined, table)
            build_key = f"{spec.left_table}.{spec.left_column}"
            probe_key = f"{spec.right_table}.{spec.right_column}"
            tree = JoinNode(
                children=[tree, scans[table].node.clone()],
                algorithm="hash",
                form=spec.form,
                left_key=build_key,
                right_key=probe_key,
            )
            joined = joined | {table}
        return tree

    @staticmethod
    def _estimate_join_rows(left_rows: float, right_rows: float) -> float:
        """Greedy-ordering heuristic: joins reduce toward the smaller input.

        The precise estimate is recomputed when the join node is built; the
        ordering pass only needs a monotone proxy.
        """
        return min(left_rows, right_rows) * max(
            1.0, math.log10(max(left_rows, right_rows) + 1.0)
        )

    def _connecting_join(self, query: Query, joined: frozenset[str], table: str) -> JoinSpec:
        specs = query.joins_between(joined, frozenset([table]))
        if not specs:
            raise ValueError(f"no join connects {table!r} to {sorted(joined)}")
        return specs[0]

    # -- physical join construction -----------------------------------------

    def _build_join(
        self,
        query: Query,
        left: _SubPlan,
        right: _SubPlan,
        spec: JoinSpec,
        model: EstimatedCardinalityModel,
        flags: OptimizerFlags,
    ) -> _SubPlan:
        left_rows = model.annotate(left.node.clone(), query, field="est_rows")
        right_rows = model.annotate(right.node.clone(), query, field="est_rows")

        # Orient so that `build` is the (estimated) smaller input.
        if right_rows <= left_rows:
            build, probe = right, left
            build_rows, probe_rows = right_rows, left_rows
        else:
            build, probe = left, right
            build_rows, probe_rows = left_rows, right_rows

        build_table_side = "left" if spec.left_table in build.tables else "right"
        build_key = (
            f"{spec.left_table}.{spec.left_column}"
            if build_table_side == "left"
            else f"{spec.right_table}.{spec.right_column}"
        )
        probe_key = (
            f"{spec.right_table}.{spec.right_column}"
            if build_table_side == "left"
            else f"{spec.left_table}.{spec.left_column}"
        )
        key_class = frozenset([build_key, probe_key])

        # Statistics-hungry join rules need trustworthy estimates for the
        # tables owning the join keys (not every table in the subtree).
        stats_ok = self._column_table_has_stats(build_key) and self._column_table_has_stats(
            probe_key
        )
        algorithm = self._choose_join_algorithm(build_rows, probe_rows, flags, stats_ok)

        # Shuffle reuse is safe to apply natively only when estimates are
        # trustworthy; the flag forces it.
        allow_reuse = flags.shuffle_removal or stats_ok
        if algorithm == "broadcast":
            build_node: PlanNode = ExchangeNode(children=[build.node], mode="broadcast")
            probe_node = probe.node
            out_partition = probe.partition_keys
            out_sorted = probe.sorted_on
        elif algorithm == "merge":
            build_node = self._partition_and_sort(build, build_key, key_class, allow_reuse)
            probe_node = self._partition_and_sort(probe, probe_key, key_class, allow_reuse)
            out_partition = key_class
            out_sorted = build_key
        else:  # hash
            build_node = self._partition(build, build_key, key_class, allow_reuse)
            probe_node = self._partition(probe, probe_key, key_class, allow_reuse)
            out_partition = key_class
            out_sorted = None

        join = JoinNode(
            children=[build_node, probe_node],
            algorithm=algorithm,
            form=spec.form,
            left_key=build_key,
            right_key=probe_key,
        )
        return _SubPlan(
            join,
            tables=build.tables | probe.tables,
            partition_keys=out_partition,
            sorted_on=out_sorted,
            stats_ok=stats_ok,
        )

    def _choose_join_algorithm(
        self, build_rows: float, probe_rows: float, flags: OptimizerFlags, stats_ok: bool
    ) -> str:
        if not flags.disable_broadcast_join and build_rows < self.broadcast_threshold:
            return "broadcast"
        if flags.prefer_merge_join:
            return "merge"
        del stats_ok  # the hash-vs-merge choice needs only row counts,
        # which exist (if stale) even without column statistics.
        if self._merge_beats_hash(build_rows, probe_rows):
            return "merge"
        return "hash"

    def _merge_beats_hash(self, build_rows: float, probe_rows: float) -> bool:
        c = self.constants
        hash_cost = c.hash_build * build_rows + c.hash_probe * probe_rows
        if build_rows > c.hash_spill_threshold:
            hash_cost *= c.hash_spill_penalty
        sort_cost = sum(
            c.sort_factor * rows * math.log2(rows + 2.0) for rows in (build_rows, probe_rows)
        )
        merge_cost = c.merge_input * (build_rows + probe_rows) + sort_cost
        return merge_cost < hash_cost

    def _partition(
        self, side: _SubPlan, key: str, key_class: frozenset[str], allow_reuse: bool
    ) -> PlanNode:
        if allow_reuse and side.partition_keys and side.partition_keys & key_class:
            return side.node  # already co-partitioned on an equivalent key
        return ExchangeNode(children=[side.node], mode="shuffle", keys=(key,))

    def _partition_and_sort(
        self, side: _SubPlan, key: str, key_class: frozenset[str], allow_reuse: bool
    ) -> PlanNode:
        node = self._partition(side, key, key_class, allow_reuse)
        if side.sorted_on == key and node is side.node:
            return node  # partitioning and order both reusable
        return SortNode(children=[node], keys=(key,))

    # -- aggregation ---------------------------------------------------------

    def _build_aggregation(
        self,
        query: Query,
        input_plan: _SubPlan,
        model: EstimatedCardinalityModel,
        flags: OptimizerFlags,
    ) -> PlanNode:
        agg = query.aggregate
        assert agg is not None
        node: PlanNode = input_plan.node

        # Estimated input/group sizes steer the native (statistics-backed)
        # application of partial aggregation and spooling.  These rules need
        # statistics for the aggregated and grouping tables only.
        input_rows = model.annotate(input_plan.node.clone(), query, field="est_rows")
        est_groups = self._estimated_group_count(agg, input_rows, model)
        # Partial aggregation needs NDVs of the grouping columns; spooling
        # needs only the input row-count estimate.
        agg_stats_ok = all(
            self._column_table_has_stats(qualified) for qualified in agg.group_by
        )

        use_spool = flags.enable_spool or input_rows > 2.0e6
        if use_spool:
            node = SpoolNode(children=[node], shared_id=f"{query.query_id}:preagg")

        kind = "sort" if (flags.prefer_merge_join and input_plan.sorted_on) else "hash"

        if not agg.group_by:
            gathered = ExchangeNode(children=[node], mode="gather")
            return AggregateNode(
                children=[gathered],
                kind=kind,
                func=agg.func,
                agg_column=f"{agg.table}.{agg.agg_column}",
                group_by=(),
            )

        use_partial = flags.partial_aggregation or (
            agg_stats_ok and est_groups < 0.05 * input_rows
        )
        if use_partial:
            node = AggregateNode(
                children=[node],
                kind=kind,
                func=agg.func,
                agg_column=f"{agg.table}.{agg.agg_column}",
                group_by=agg.group_by,
                partial=True,
            )

        needs_shuffle = True
        if (
            (flags.shuffle_removal or agg_stats_ok)
            and input_plan.partition_keys
            and set(agg.group_by) & input_plan.partition_keys
        ):
            needs_shuffle = False
        if needs_shuffle:
            node = ExchangeNode(children=[node], mode="shuffle", keys=agg.group_by)

        return AggregateNode(
            children=[node],
            kind=kind,
            func=agg.func,
            agg_column=f"{agg.table}.{agg.agg_column}",
            group_by=agg.group_by,
        )

    def _column_table_has_stats(self, qualified_column: str) -> bool:
        table, _, _ = qualified_column.partition(".")
        return self.stats.has_column_stats(table)

    def _estimated_group_count(
        self, agg, input_rows: float, model: EstimatedCardinalityModel
    ) -> float:
        groups = 1.0
        for qualified in agg.group_by:
            groups *= min(model.column_ndv(qualified), input_rows)
        return min(groups, input_rows)
