"""Cluster simulation: machines, dynamic load, and stage scheduling.

This reproduces challenge C1: query execution draws resources from a shared
cluster-wide pool whose per-machine load varies over time, so an identical
plan's CPU cost fluctuates substantially across executions.

Each machine carries the four load metrics the paper encodes (Appendix B.2):

* ``CPU_IDLE`` — fraction of CPU time idle, in [0, 1];
* ``IO_WAIT`` — fraction of CPU time waiting for I/O, in [0, 1];
* ``LOAD5`` — 5-minute load average (unbounded; log-normalized downstream);
* ``MEM_USAGE`` — fraction of memory in use, in [0, 1].

Metrics follow mean-reverting AR(1) processes around per-machine baselines,
mimicking multi-tenant interference.  The scheduler allocates stage
instances preferentially to idle machines, as production load balancers do
(Section 7.2.5 relies on this: cluster-wide averages differ from the loads a
query actually experiences).  State is stored as one ``(n_machines, 4)``
array so a 10 000-query history simulates in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import log_minmax_normalize, spawn_rng

__all__ = ["EnvironmentSample", "Cluster", "LOAD5_MAX", "METRIC_NAMES"]

#: Upper bound used to log-normalize LOAD5 into [0, 1].
LOAD5_MAX = 64.0

METRIC_NAMES = ("CPU_IDLE", "IO_WAIT", "LOAD5", "MEM_USAGE")

_RHO = 0.9
_VOLATILITY = np.array([0.08, 0.02, 1.2, 0.05])
_METRIC_MIN = np.array([0.0, 0.0, 0.0, 0.0])
_METRIC_MAX = np.array([1.0, 1.0, LOAD5_MAX, 1.0])


@dataclass(frozen=True)
class EnvironmentSample:
    """Stage-level execution environment: metrics averaged over the stage's
    execution window and across all allocated machines (Section 4)."""

    cpu_idle: float
    io_wait: float
    load5: float
    mem_usage: float

    def normalized(self) -> tuple[float, float, float, float]:
        """Feature vector in [0, 1]^4: LOAD5 log-normalized, rest direct."""
        return (
            float(min(1.0, max(0.0, self.cpu_idle))),
            float(min(1.0, max(0.0, self.io_wait))),
            log_minmax_normalize(self.load5, 0.0, LOAD5_MAX),
            float(min(1.0, max(0.0, self.mem_usage))),
        )

    @staticmethod
    def from_normalized(features: tuple[float, float, float, float]) -> "EnvironmentSample":
        """Inverse of :meth:`normalized` (LOAD5 de-log-normalized)."""
        cpu_idle, io_wait, load5_norm, mem_usage = features
        load5 = float(np.expm1(load5_norm * np.log1p(LOAD5_MAX)))
        return EnvironmentSample(cpu_idle, io_wait, load5, mem_usage)

    @staticmethod
    def mean_of(samples: list["EnvironmentSample"]) -> "EnvironmentSample":
        if not samples:
            raise ValueError("cannot average zero environment samples")
        return EnvironmentSample(
            cpu_idle=float(np.mean([s.cpu_idle for s in samples])),
            io_wait=float(np.mean([s.io_wait for s in samples])),
            load5=float(np.mean([s.load5 for s in samples])),
            mem_usage=float(np.mean([s.mem_usage for s in samples])),
        )


class Cluster:
    """A pool of homogeneous machines plus the Fuxi-like stage scheduler.

    Machine hardware is intentionally homogeneous (the paper's stated
    justification for omitting hardware features); heterogeneity comes from
    load baselines only.
    """

    def __init__(self, n_machines: int = 200, *, rng: np.random.Generator | None = None) -> None:
        if n_machines < 1:
            raise ValueError("cluster needs at least one machine")
        rng = rng or np.random.default_rng(0)
        self._rng = spawn_rng(rng, "cluster")
        init = spawn_rng(rng, "cluster-init")
        n = n_machines
        base = np.empty((n, 4))
        base[:, 0] = np.clip(init.beta(4.0, 4.0, size=n), 0.05, 0.95)  # CPU_IDLE
        base[:, 1] = np.clip(init.beta(1.2, 20.0, size=n), 0.0, 0.6)  # IO_WAIT
        base[:, 2] = np.clip(init.gamma(2.0, 3.0, size=n), 0.1, LOAD5_MAX)  # LOAD5
        base[:, 3] = np.clip(init.beta(5.0, 4.0, size=n), 0.05, 0.98)  # MEM_USAGE
        self._base = base
        self._state = base.copy()

    @property
    def n_machines(self) -> int:
        return self._base.shape[0]

    def advance(self, ticks: int = 1) -> None:
        """Let multi-tenant background load evolve (one tick ~ 20 s)."""
        for _ in range(ticks):
            noise = self._rng.normal(0.0, 1.0, size=self._state.shape) * _VOLATILITY
            self._state = self._base + _RHO * (self._state - self._base) + noise
            np.clip(self._state, _METRIC_MIN, _METRIC_MAX, out=self._state)

    def allocate(self, n_instances: int) -> np.ndarray:
        """Allocate machine indices for a stage, preferring idle machines.

        Selection is a softmax over ``CPU_IDLE`` so busy machines are not
        excluded outright; the allocation itself adds load to the chosen
        machines (a query's own footprint).
        """
        if n_instances < 1:
            raise ValueError("n_instances must be >= 1")
        idles = self._state[:, 0]
        weights = np.exp(3.0 * idles)
        weights /= weights.sum()
        n_distinct = min(n_instances, self.n_machines)
        chosen = self._rng.choice(self.n_machines, size=n_distinct, replace=False, p=weights)
        intensity = min(1.0, n_instances / max(1, self.n_machines)) + 0.1
        self._state[chosen, 0] -= 0.25 * intensity
        self._state[chosen, 1] += 0.05 * intensity
        self._state[chosen, 2] += 4.0 * intensity
        self._state[chosen, 3] += 0.10 * intensity
        np.clip(self._state, _METRIC_MIN, _METRIC_MAX, out=self._state)
        return chosen

    def _sample_rows(self, rows: np.ndarray) -> EnvironmentSample:
        mean = self._state[rows].mean(axis=0)
        return EnvironmentSample(
            cpu_idle=float(mean[0]),
            io_wait=float(mean[1]),
            load5=float(mean[2]),
            mem_usage=float(mean[3]),
        )

    def stage_environment(self, machine_indices: np.ndarray) -> EnvironmentSample:
        """The logged stage-level environment: average across allocations."""
        if len(machine_indices) == 0:
            raise ValueError("stage must be allocated at least one machine")
        return self._sample_rows(np.asarray(machine_indices))

    def machine_environment(self, machine_index: int) -> EnvironmentSample:
        return self._sample_rows(np.array([machine_index]))

    def cluster_environment(self) -> EnvironmentSample:
        """Cluster-wide average (what the LOAM-CE/CB baselines consume)."""
        return self._sample_rows(np.arange(self.n_machines))
