"""Flight recorder: a per-process ring buffer that dumps on incidents.

Every process that serves traffic (the gateway's host process, each fleet
worker) keeps a bounded ring of recent structured events and span records.
When something goes wrong — a circuit-breaker trip, a worker crash, a shed
storm — the ring is snapshotted to a JSONL file so the seconds *before*
the incident can be reconstructed after the fact, exactly the post-hoc
telemetry that production steering deployments report needing.

Dump files are self-describing: the first line is a header record with the
trigger reason, process label, pid and timestamp; every following line is
one event in arrival order (oldest first).  Auto-dumps are cooldown-gated
so a storm of trips produces one snapshot, not a disk flood.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque

__all__ = ["FlightRecorder", "DEFAULT_DUMP_DIR_ENV"]

DEFAULT_DUMP_DIR_ENV = "REPRO_FLIGHT_DIR"

# Event kinds that trigger an automatic snapshot.
AUTO_DUMP_KINDS = frozenset({"breaker-trip", "worker-crash", "shed-storm"})


class FlightRecorder:
    """Bounded ring of events/spans with incident-triggered JSONL dumps.

    Parameters
    ----------
    capacity:
        Ring size; oldest entries fall off.
    dump_dir:
        Where snapshots go.  Defaults to ``$REPRO_FLIGHT_DIR`` or
        ``flight-dumps/`` under the working directory; created on first
        dump, never eagerly.
    process_label:
        Included in dump filenames and the header so merged incident
        folders stay attributable (e.g. ``"worker-2"``).
    storm_threshold / storm_window_seconds:
        A ``shed-storm`` event fires when at least ``storm_threshold``
        sheds land within the window.
    dump_cooldown_seconds:
        Minimum spacing between *automatic* dumps; explicit ``dump()``
        calls always write.
    """

    def __init__(
        self,
        capacity=4096,
        *,
        dump_dir=None,
        process_label="main",
        storm_threshold=50,
        storm_window_seconds=1.0,
        dump_cooldown_seconds=5.0,
        clock=time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.process_label = str(process_label)
        self._ring = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self._clock = clock
        self._dump_dir = dump_dir
        self._storm_threshold = int(storm_threshold)
        self._storm_window = float(storm_window_seconds)
        self._cooldown = float(dump_cooldown_seconds)
        self._shed_times = deque()
        self._last_auto_dump = None
        self._dump_seq = 0
        self.dumps_total = 0
        self.events_total = 0
        self.last_dump_path = None
        self.last_dump_reason = None

    # -- recording -------------------------------------------------------

    def record(self, kind, name="", **attrs):
        """Record a structured event; auto-dump on incident kinds."""
        event = {
            "type": "event",
            "kind": str(kind),
            "name": str(name),
            "t": time.time(),
            "attrs": attrs,
        }
        with self._lock:
            self._ring.append(event)
            self.events_total += 1
        if kind in AUTO_DUMP_KINDS:
            self._auto_dump(str(kind))
        return event

    def record_span(self, span_record):
        """Feed a finished span record into the ring (tracer hook)."""
        with self._lock:
            self._ring.append({"type": "span", **span_record})
            self.events_total += 1

    def note_shed(self, reason):
        """Count one shed; escalates to a ``shed-storm`` event on a burst."""
        now = self._clock()
        storm = False
        with self._lock:
            self._shed_times.append(now)
            horizon = now - self._storm_window
            while self._shed_times and self._shed_times[0] < horizon:
                self._shed_times.popleft()
            if len(self._shed_times) >= self._storm_threshold:
                storm = True
                self._shed_times.clear()
        if storm:
            self.record("shed-storm", reason, threshold=self._storm_threshold,
                        window_seconds=self._storm_window)
        return storm

    # -- dumping ---------------------------------------------------------

    def _auto_dump(self, reason):
        now = self._clock()
        with self._lock:
            if self._last_auto_dump is not None and (
                now - self._last_auto_dump
            ) < self._cooldown:
                return None
            self._last_auto_dump = now
        return self.dump(reason=reason)

    def dump(self, reason="manual", path=None):
        """Snapshot the ring to JSONL; returns the file path."""
        if path is None:
            dump_dir = self._dump_dir or os.environ.get(
                DEFAULT_DUMP_DIR_ENV, "flight-dumps"
            )
            os.makedirs(dump_dir, exist_ok=True)
            with self._lock:
                self._dump_seq += 1
                seq = self._dump_seq
            fname = (
                f"flight-{self.process_label}-pid{os.getpid()}-{seq:03d}-{reason}.jsonl"
            )
            path = os.path.join(dump_dir, fname)
        with self._lock:
            entries = list(self._ring)
        header = {
            "type": "header",
            "reason": reason,
            "process": self.process_label,
            "pid": os.getpid(),
            "at": time.time(),
            "n_entries": len(entries),
        }
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(header, sort_keys=True, default=str) + "\n")
            for entry in entries:
                fh.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        with self._lock:
            self.dumps_total += 1
            self.last_dump_path = path
            self.last_dump_reason = reason
        return path

    # -- introspection ---------------------------------------------------

    def entries(self):
        with self._lock:
            return list(self._ring)

    def stats(self):
        with self._lock:
            return {
                "capacity": self._ring.maxlen,
                "buffered": len(self._ring),
                "events_total": self.events_total,
                "dumps_total": self.dumps_total,
                "last_dump_path": self.last_dump_path,
                "last_dump_reason": self.last_dump_reason,
            }
