"""SLO monitoring: rolling deadline-hit-rate and p99 burn-rate windows.

Follows the multi-window, multi-burn-rate alerting recipe: each configured
window tracks the deadline-miss *error rate* relative to the error budget
(``1 - objective``); the ratio is the **burn rate** (1.0 = spending budget
exactly at the sustainable pace).  An alert requires *every* window to
exceed its threshold simultaneously — the long window proves the burn is
material, the short window proves it is still happening — which is what
keeps pages from firing on either ancient history or momentary blips.

Latency is tracked the same way: per-window p99 against a target, exported
as a ``p99 / target`` ratio so dashboards get a unitless burn-style gauge.

The monitor takes an injectable clock, so window math is testable without
sleeping, and exports through :class:`repro.gateway.telemetry.Telemetry`
gauges (hence the Prometheus text format for free).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["SLOConfig", "SLOWindow", "SLOMonitor"]


@dataclass(frozen=True)
class SLOWindow:
    """One alerting window: ``seconds`` wide, alerting above ``threshold``."""

    seconds: float
    burn_threshold: float

    def __post_init__(self):
        if self.seconds <= 0:
            raise ValueError("window seconds must be > 0")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be > 0")


@dataclass(frozen=True)
class SLOConfig:
    """Objectives and alerting windows.

    ``deadline_hit_objective`` is the SLO proper (fraction of requests that
    must resolve within their deadline budget); ``p99_target_seconds`` is
    the latency target the p99 burn gauge is normalized by.  Windows follow
    the fast/slow pairing: defaults are a 1-minute window at 14.4× burn and
    a 10-minute window at 6× burn (the classic page-worthy pair, scaled to
    serving-bench time horizons).
    """

    deadline_hit_objective: float = 0.99
    p99_target_seconds: float = 0.25
    windows: tuple = (SLOWindow(60.0, 14.4), SLOWindow(600.0, 6.0))
    min_samples: int = 10

    def __post_init__(self):
        if not 0.0 < self.deadline_hit_objective < 1.0:
            raise ValueError("deadline_hit_objective must be in (0, 1)")
        if self.p99_target_seconds <= 0:
            raise ValueError("p99_target_seconds must be > 0")
        if not self.windows:
            raise ValueError("at least one window is required")
        windows = tuple(
            w if isinstance(w, SLOWindow) else SLOWindow(*w) for w in self.windows
        )
        object.__setattr__(self, "windows", windows)

    @property
    def error_budget(self):
        return 1.0 - self.deadline_hit_objective


class SLOMonitor:
    """Rolling-window SLO tracker with multi-window burn-rate alerting."""

    def __init__(self, config=None, *, clock=time.monotonic, max_samples=65536):
        self.config = config or SLOConfig()
        self._clock = clock
        self._samples = deque(maxlen=int(max_samples))
        self._lock = threading.Lock()
        self._total = 0
        self._total_miss = 0
        self._horizon = max(w.seconds for w in self.config.windows)

    def record(self, latency_seconds, *, deadline_hit=True):
        """Record one finished request outcome."""
        now = self._clock()
        with self._lock:
            self._samples.append((now, float(latency_seconds), bool(deadline_hit)))
            self._total += 1
            if not deadline_hit:
                self._total_miss += 1
            self._prune(now)

    def _prune(self, now):
        horizon = now - self._horizon
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def _window_samples(self, now, seconds):
        cutoff = now - seconds
        return [s for s in self._samples if s[0] >= cutoff]

    @staticmethod
    def _p99(latencies):
        if not latencies:
            return 0.0
        ordered = sorted(latencies)
        rank = max(0, int(0.99 * len(ordered) + 0.999999) - 1)  # nearest-rank
        return ordered[min(rank, len(ordered) - 1)]

    def window_stats(self, seconds):
        """n / hit_rate / burn_rate / p99 / p99_burn for one window."""
        now = self._clock()
        with self._lock:
            self._prune(now)
            samples = self._window_samples(now, float(seconds))
        n = len(samples)
        misses = sum(1 for s in samples if not s[2])
        hit_rate = 1.0 if n == 0 else 1.0 - misses / n
        error_rate = 0.0 if n == 0 else misses / n
        burn = error_rate / self.config.error_budget
        p99 = self._p99([s[1] for s in samples])
        return {
            "window_seconds": float(seconds),
            "n": n,
            "hit_rate": hit_rate,
            "error_rate": error_rate,
            "burn_rate": burn,
            "p99_seconds": p99,
            "p99_burn": p99 / self.config.p99_target_seconds,
        }

    def alerting(self):
        """True when every configured window burns above its threshold."""
        for window in self.config.windows:
            stats = self.window_stats(window.seconds)
            if stats["n"] < self.config.min_samples:
                return False
            if stats["burn_rate"] < window.burn_threshold:
                return False
        return True

    def snapshot(self):
        with self._lock:
            total, miss = self._total, self._total_miss
        return {
            "objective": self.config.deadline_hit_objective,
            "p99_target_seconds": self.config.p99_target_seconds,
            "total": total,
            "total_missed": miss,
            "alerting": self.alerting(),
            "windows": [self.window_stats(w.seconds) for w in self.config.windows],
        }

    def export(self, telemetry):
        """Mirror the current window stats into Telemetry gauges."""
        for window in self.config.windows:
            stats = self.window_stats(window.seconds)
            tag = f"{window.seconds:g}s"
            telemetry.gauge(f"slo_hit_rate_{tag}").set(stats["hit_rate"])
            telemetry.gauge(f"slo_burn_rate_{tag}").set(stats["burn_rate"])
            telemetry.gauge(f"slo_p99_burn_{tag}").set(stats["p99_burn"])
        telemetry.gauge("slo_alerting").set(1.0 if self.alerting() else 0.0)
