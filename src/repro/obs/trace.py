"""Distributed tracing primitives for the serving stack.

The model is deliberately small — an OpenTelemetry-shaped subset that fits
this codebase:

``TraceContext``
    The wire-format identity of a span: ``trace_id`` / ``span_id`` /
    ``parent_id`` plus the sampling decision.  Contexts serialize to plain
    tuples so they can ride the fleet RPC framing between processes.

``Span``
    A named, timed unit of work with attributes and events.  Spans are
    context managers; exiting finishes the span and hands it to its tracer.

``Tracer``
    Mints spans.  Ids are deterministic under a seed (a splitmix64 mix of
    seed-derived salts and a per-tracer counter) so seeded runs — tests,
    scenario replays — produce identical trace ids.  Sampling is head-based: the decision is
    made once at the root span and propagated to every child, including
    across processes.  A disabled tracer (``sample_rate=0``) returns a
    shared no-op span, so tracing-off costs one method call per request.

Finished sampled spans land in a bounded in-memory buffer (drained by the
fleet worker reply path), optionally in a :class:`SpanCollector`, a
:class:`~repro.obs.recorder.FlightRecorder`, and — bounded by a token
bucket so an overload cannot amplify into disk pressure — a JSONL export
sink.

``traced_section`` attaches child spans to whatever span the current
thread activated (a ``contextvars`` slot), which is how the serving layer
gains encode/forward/quantize spans without threading a tracer through
``CostInferenceService``.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import itertools
import json
import os
import threading
import typing
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field

__all__ = [
    "TraceContext",
    "Span",
    "NULL_SPAN",
    "Tracer",
    "SpanCollector",
    "SpanTree",
    "ObsConfig",
    "current_span",
    "activate_span",
    "traced_section",
]


class TraceContext(typing.NamedTuple):
    """Identity of one span, small enough to ride RPC framing.

    A NamedTuple rather than a dataclass: contexts are built once per span
    on the request path, and tuple construction is measurably cheaper than
    a frozen dataclass ``__init__``.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None
    sampled: bool = True

    def to_wire(self):
        """Serialize for the fleet RPC framing (plain tuple)."""
        return (self.trace_id, self.span_id, self.parent_id, self.sampled)

    @classmethod
    def from_wire(cls, wire) -> "TraceContext | None":
        if wire is None:
            return None
        trace_id, span_id, parent_id, sampled = wire
        return cls(trace_id, span_id, parent_id, bool(sampled))


class Span:
    """A timed unit of work.  Use as a context manager or call finish()."""

    __slots__ = (
        "name",
        "context",
        "start_time",
        "end_time",
        "attrs",
        "events",
        "_tracer",
        "_perf_start",
        "_finished",
    )

    sampled = True

    def __init__(self, tracer, name, context, attrs=None):
        self.name = name
        self.context = context
        self.start_time = time.time()
        self.end_time = None
        self.attrs = dict(attrs) if attrs else {}
        self.events = []
        self._tracer = tracer
        self._perf_start = time.perf_counter()
        self._finished = False

    @property
    def trace_id(self):
        return self.context.trace_id

    @property
    def span_id(self):
        return self.context.span_id

    def set_attr(self, key, value):
        self.attrs[key] = value

    def set_attrs(self, **attrs):
        self.attrs.update(attrs)

    def add_event(self, name, **attrs):
        self.events.append({"name": name, "t": time.time(), **attrs})

    def finish(self):
        if self._finished:
            return
        self._finished = True
        self.end_time = self.start_time + (time.perf_counter() - self._perf_start)
        self._tracer._on_finish(self)

    def as_dict(self):
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "name": self.name,
            "process": self._tracer.process_label,
            "pid": os.getpid(),
            "start": self.start_time,
            "duration_ms": None
            if self.end_time is None
            else (self.end_time - self.start_time) * 1e3,
            "attrs": self.attrs,
            "events": self.events,
        }

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs.setdefault("error", repr(exc))
        self.finish()
        return False


class _NullSpan:
    """Shared no-op span returned when tracing is off or unsampled."""

    __slots__ = ()

    sampled = False
    context = None
    trace_id = None
    span_id = None
    name = "null"
    attrs: dict = {}

    def set_attr(self, key, value):
        pass

    def set_attrs(self, **attrs):
        pass

    def add_event(self, name, **attrs):
        pass

    def finish(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()

#: Slots in a tracer's precomputed sampling-decision table (power of two).
_DECISION_TABLE_SIZE = 4096

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _splitmix64(x):
    """splitmix64 finalizer: uniform, bijective on 64 bits, ~20x cheaper
    than the sha256 it replaced on the per-span minting path."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64

_ACTIVE_SPAN: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_span", default=None
)


def current_span():
    """The span activated in this thread/context, or None."""
    return _ACTIVE_SPAN.get()


@contextlib.contextmanager
def activate_span(span):
    """Make ``span`` the implicit parent for traced_section in this context."""
    token = _ACTIVE_SPAN.set(span)
    try:
        yield span
    finally:
        _ACTIVE_SPAN.reset(token)


@contextlib.contextmanager
def traced_section(name, **attrs):
    """Child span under the active span; near-free when nothing is active."""
    parent = _ACTIVE_SPAN.get()
    if parent is None or not parent.sampled:
        yield NULL_SPAN
        return
    span = parent._tracer.start_span(name, parent=parent, attrs=attrs or None)
    token = _ACTIVE_SPAN.set(span)
    try:
        yield span
    except BaseException as exc:
        span.attrs.setdefault("error", repr(exc))
        raise
    finally:
        _ACTIVE_SPAN.reset(token)
        span.finish()


class Tracer:
    """Mints spans with deterministic-under-seed ids and head sampling.

    Parameters
    ----------
    sample_rate:
        Probability that a new root trace is sampled.  ``0.0`` disables the
        tracer entirely (every start returns :data:`NULL_SPAN`); child spans
        of an already-sampled parent context are always created so
        cross-process propagation works even when the local rate is 0.
    seed:
        When given, trace/span ids are a pure function of (seed, counter):
        two tracers with the same seed mint identical id sequences.
    export_path:
        Optional JSONL file; finished sampled spans are appended, rate
        bounded by ``max_export_per_sec`` (token bucket, bursts allowed).
    collector:
        Optional :class:`SpanCollector` fed every finished sampled span.
    recorder:
        Optional flight recorder fed every finished sampled span.
    """

    def __init__(
        self,
        sample_rate=1.0,
        *,
        seed=None,
        export_path=None,
        max_export_per_sec=200.0,
        collector=None,
        recorder=None,
        max_buffered_spans=8192,
        process_label="main",
        clock=time.monotonic,
    ):
        if not 0.0 <= float(sample_rate) <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = float(sample_rate)
        self.process_label = str(process_label)
        self._clock = clock
        if seed is None:
            self._key = os.urandom(16).hex()
        else:
            self._key = f"seed:{int(seed)}"
        # itertools.count: atomically incremented in C, so the every-request
        # sampling path never takes a Python lock.
        self._counter = itertools.count()
        # Per-tracer salts for the cheap per-span id hash.  Ids stay a pure
        # function of (seed, counter) — splitmix64 is a bijection, so ids
        # never collide within a tracer — but cost one 64-bit mix instead
        # of the sha256 an earlier version paid per mint.
        self._sample_salt = int.from_bytes(
            hashlib.sha256(f"{self._key}|sample".encode()).digest()[:8], "big"
        )
        self._trace_salt_hi = int.from_bytes(
            hashlib.sha256(f"{self._key}|trace-hi".encode()).digest()[:8], "big"
        )
        self._trace_salt_lo = int.from_bytes(
            hashlib.sha256(f"{self._key}|trace-lo".encode()).digest()[:8], "big"
        )
        self._span_salt = int.from_bytes(
            hashlib.sha256(f"{self._key}|span".encode()).digest()[:8], "big"
        )
        # The sampling decision runs on EVERY request when tracing is on,
        # so it is precomputed: one splitmix pass per table slot at init,
        # a single list index at runtime (decision period = table size,
        # irrelevant for head sampling).  A non-zero rate always keeps at
        # least one sampled slot so tiny rates cannot silently disable
        # tracing.
        self._decision_mask = _DECISION_TABLE_SIZE - 1
        if 0.0 < self.sample_rate < 1.0:
            threshold = int(self.sample_rate * 2**64)
            table = [
                _splitmix64(self._sample_salt + n) < threshold
                for n in range(_DECISION_TABLE_SIZE)
            ]
            if not any(table):
                table[
                    min(
                        range(_DECISION_TABLE_SIZE),
                        key=lambda n: _splitmix64(self._sample_salt + n),
                    )
                ] = True
            self._decisions = table
        else:
            self._decision_mask = 0
            self._decisions = [self.sample_rate >= 1.0]
        self._lock = threading.Lock()
        self._buffer = deque(maxlen=int(max_buffered_spans))
        self._collector = collector
        self._recorder = recorder
        self._export_path = export_path
        self._export_lock = threading.Lock()
        self._bucket = float(max_export_per_sec)
        self._bucket_max = max(1.0, float(max_export_per_sec))
        self._bucket_rate = float(max_export_per_sec)
        self._bucket_at = clock()
        self._spans_started = 0
        self._spans_dropped = 0
        self._spans_exported = 0

    @property
    def enabled(self):
        return self.sample_rate > 0.0

    # -- id minting ------------------------------------------------------

    def _mint_span_id(self):
        n = next(self._counter)
        return format(_splitmix64(self._span_salt + n), "016x")

    def _sample_decision(self, n):
        return self._decisions[n & self._decision_mask]

    # -- span creation ---------------------------------------------------

    def start_trace(self, name, *, parent=None, attrs=None):
        """Start a root span (or a child of a cross-process parent context).

        ``parent`` is a :class:`TraceContext` from upstream (e.g. the fleet
        parent process) or None for a brand-new trace.  The upstream
        sampling decision wins: a sampled parent always yields a real span,
        an unsampled one always yields :data:`NULL_SPAN`.
        """
        if parent is not None:
            if not parent.sampled:
                return NULL_SPAN
            ctx = TraceContext(parent.trace_id, self._mint_span_id(), parent.span_id, True)
            self._spans_started += 1
            return Span(self, name, ctx, attrs)
        # Decide sampling BEFORE minting: unsampled requests (the vast
        # majority at production rates) then pay one counter bump and one
        # table lookup — no hashing at all.
        n = next(self._counter)
        if not self._decisions[n & self._decision_mask]:
            return NULL_SPAN
        trace_id = format(_splitmix64(self._trace_salt_hi + n), "016x") + format(
            _splitmix64(self._trace_salt_lo + n), "016x"
        )
        self._spans_started += 1
        return Span(
            self, name, TraceContext(trace_id, self._mint_span_id(), None, True), attrs
        )

    def start_span(self, name, *, parent, attrs=None):
        """Child span of a live Span (or TraceContext) in this process."""
        if parent is None or not parent.sampled:
            return NULL_SPAN
        ctx = parent.context if isinstance(parent, Span) else parent
        self._spans_started += 1
        return Span(
            self,
            name,
            TraceContext(ctx.trace_id, self._mint_span_id(), ctx.span_id, True),
            attrs,
        )

    # -- finish pipeline -------------------------------------------------

    def _on_finish(self, span):
        if self._collector is None and self._recorder is None and self._export_path is None:
            # No sinks: buffer the finished Span itself and materialize the
            # record dict lazily at drain() — keeps the per-span cost off
            # the request path when nothing consumes records eagerly.
            with self._lock:
                if len(self._buffer) == self._buffer.maxlen:
                    self._spans_dropped += 1
                self._buffer.append(span)
            return
        record = span.as_dict()
        with self._lock:
            if len(self._buffer) == self._buffer.maxlen:
                self._spans_dropped += 1
            self._buffer.append(record)
        if self._collector is not None:
            self._collector.add(record)
        if self._recorder is not None:
            self._recorder.record_span(record)
        if self._export_path is not None and self._take_token():
            self._export(record)

    def _take_token(self):
        with self._export_lock:
            now = self._clock()
            self._bucket = min(
                self._bucket_max, self._bucket + (now - self._bucket_at) * self._bucket_rate
            )
            self._bucket_at = now
            if self._bucket >= 1.0:
                self._bucket -= 1.0
                return True
            return False

    def _export(self, record):
        line = json.dumps(record, sort_keys=True, default=str)
        with self._export_lock:
            with open(self._export_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        self._spans_exported += 1

    # -- draining --------------------------------------------------------

    def drain(self, trace_id=None):
        """Pop buffered span records — all, or only those of one trace."""
        with self._lock:
            if trace_id is None:
                out = list(self._buffer)
                self._buffer.clear()
                return [s.as_dict() if isinstance(s, Span) else s for s in out]
            out, keep = [], []
            for item in self._buffer:
                tid = (
                    item.context.trace_id if isinstance(item, Span) else item["trace_id"]
                )
                (out if tid == trace_id else keep).append(item)
            self._buffer.clear()
            self._buffer.extend(keep)
            return [s.as_dict() if isinstance(s, Span) else s for s in out]

    def stats(self):
        with self._lock:
            buffered = len(self._buffer)
        return {
            "sample_rate": self.sample_rate,
            "spans_started": self._spans_started,
            "spans_buffered": buffered,
            "spans_dropped": self._spans_dropped,
            "spans_exported": self._spans_exported,
        }


DISABLED_TRACER = Tracer(sample_rate=0.0, seed=0)


class SpanTree:
    """A stitched view of one trace across processes."""

    def __init__(self, trace_id, spans):
        self.trace_id = trace_id
        self.spans = list(spans)
        self._by_id = {s["span_id"]: s for s in self.spans}

    def __len__(self):
        return len(self.spans)

    def names(self):
        return sorted(s["name"] for s in self.spans)

    def processes(self):
        return sorted({(s["process"], s["pid"]) for s in self.spans})

    def roots(self):
        return [
            s
            for s in self.spans
            if s["parent_id"] is None or s["parent_id"] not in self._by_id
        ]

    def missing_parents(self):
        """Parent span ids referenced but not present — empty iff complete."""
        return sorted(
            {
                s["parent_id"]
                for s in self.spans
                if s["parent_id"] is not None and s["parent_id"] not in self._by_id
            }
        )

    def is_complete(self):
        """True when every parent edge resolves and exactly one root exists."""
        return bool(self.spans) and not self.missing_parents() and len(
            [s for s in self.spans if s["parent_id"] is None]
        ) == 1

    def children(self, span_id):
        return [s for s in self.spans if s["parent_id"] == span_id]

    def render(self, indent="  "):
        """Human-readable tree, children ordered by start time."""
        lines = []

        def walk(span, depth):
            dur = span.get("duration_ms")
            dur_s = f" {dur:.2f}ms" if dur is not None else ""
            attrs = span.get("attrs") or {}
            attr_s = (
                " {" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "}"
                if attrs
                else ""
            )
            lines.append(
                f"{indent * depth}{span['name']} [{span['process']}/{span['pid']}]"
                f"{dur_s}{attr_s}"
            )
            for child in sorted(self.children(span["span_id"]), key=lambda s: s["start"]):
                walk(child, depth + 1)

        for root in sorted(self.roots(), key=lambda s: s["start"]):
            walk(root, 0)
        return "\n".join(lines)

    def as_dict(self):
        return {
            "trace_id": self.trace_id,
            "n_spans": len(self.spans),
            "complete": self.is_complete(),
            "names": self.names(),
            "processes": [list(p) for p in self.processes()],
        }


class SpanCollector:
    """Accumulates span records per trace; bounded by trace count (LRU)."""

    def __init__(self, max_traces=1024):
        self._traces: OrderedDict = OrderedDict()
        self._max_traces = int(max_traces)
        self._lock = threading.Lock()
        self._evicted = 0

    def add(self, record):
        trace_id = record.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = []
                self._traces[trace_id] = spans
                while len(self._traces) > self._max_traces:
                    self._traces.popitem(last=False)
                    self._evicted += 1
            else:
                self._traces.move_to_end(trace_id)
            spans.append(record)

    def add_many(self, records):
        for record in records:
            self.add(record)

    def trace_ids(self):
        with self._lock:
            return list(self._traces)

    def tree(self, trace_id):
        with self._lock:
            spans = list(self._traces.get(trace_id, ()))
        return SpanTree(trace_id, spans)

    def stats(self):
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": sum(len(v) for v in self._traces.values()),
                "evicted_traces": self._evicted,
            }


@dataclass(frozen=True)
class ObsConfig:
    """Observability wiring for a fleet: how workers build their tracers.

    ``sample_rate``/``seed`` parameterize each process's tracer (worker
    seeds are derived per worker id so ids never collide across shards);
    ``dump_dir`` is where flight recorders write incident snapshots;
    ``export_path`` is the parent-side JSONL span sink.
    """

    sample_rate: float = 1.0
    seed: int | None = None
    export_path: str | None = None
    dump_dir: str | None = None
    max_export_per_sec: float = 200.0
    recorder_capacity: int = 4096
    slo: object | None = field(default=None, compare=False)
