"""Observability for the serving stack: tracing, flight recorder, SLOs.

Three pieces, designed to be wired into the gateway / fleet / lifecycle
layers without coupling them to each other:

* :mod:`repro.obs.trace` — ``TraceContext`` / ``Span`` / ``Tracer`` with
  deterministic-under-seed ids, head sampling, cross-process propagation
  over the fleet RPC framing, bounded JSONL export, and a
  ``SpanCollector`` that stitches complete span trees per trace id.
* :mod:`repro.obs.recorder` — ``FlightRecorder``, a per-process ring
  buffer of recent spans/events that snapshots itself to JSONL on breaker
  trips, worker crashes, and shed storms.
* :mod:`repro.obs.slo` — ``SLOMonitor``, rolling-window deadline-hit-rate
  and p99 burn-rate tracking with multi-window alerting, exported through
  ``Telemetry`` gauges (and therefore the Prometheus text format).
"""

from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SLOConfig, SLOMonitor, SLOWindow
from repro.obs.trace import (
    NULL_SPAN,
    ObsConfig,
    Span,
    SpanCollector,
    SpanTree,
    TraceContext,
    Tracer,
    activate_span,
    current_span,
    traced_section,
)

__all__ = [
    "FlightRecorder",
    "SLOConfig",
    "SLOMonitor",
    "SLOWindow",
    "NULL_SPAN",
    "ObsConfig",
    "Span",
    "SpanCollector",
    "SpanTree",
    "TraceContext",
    "Tracer",
    "activate_span",
    "current_span",
    "traced_section",
]
