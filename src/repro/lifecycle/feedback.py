"""Executed-plan outcome feedback: the data the lifecycle loop closes over.

Every plan the warehouse actually runs yields a ``(predicted, observed)``
pair — the only ground truth a deployed cost model ever receives.  The
:class:`FeedbackLog` collects these outcomes from the executor/harness
path into a bounded append-only buffer:

* **bounded** — a ring of ``capacity`` records; the oldest fall off and a
  ``dropped`` counter keeps the loss observable;
* **append-only** — records are immutable; with a ``path`` every append is
  also written as one JSON line, so the on-disk log survives the process
  and can be replayed into a fresh buffer with :meth:`FeedbackLog.load`
  (numeric fields only — plan object references are in-memory extras for
  canary shadow evaluation and are not serialized).

Downstream consumers: :class:`~repro.lifecycle.drift.DriftMonitor` computes
rolling error and environment-distribution statistics over the log, and
:class:`~repro.lifecycle.canary.CanaryController` shadow-evaluates a
candidate model against the incumbent on a held-out slice of it.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.serving.fingerprint import plan_fingerprint

__all__ = ["FeedbackRecord", "FeedbackLog", "plan_digest"]


def plan_digest(plan) -> str:
    """A stable, process-portable digest of a plan's structural fingerprint
    (the tuple fingerprint itself relies on interpreter hashing and object
    identity, which a persisted log cannot)."""
    return hashlib.sha256(repr(plan_fingerprint(plan)).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class FeedbackRecord:
    """One executed-plan outcome."""

    fingerprint: str
    predicted_cost: float
    observed_cost: float
    env_features: tuple[float, float, float, float] | None
    day: int
    model_version: int
    n_nodes: int
    #: In-memory only: retained so the canary can re-score the plan under
    #: both incumbent and candidate.  Never persisted; ``None`` after a
    #: reload from disk.
    plan: object | None = field(default=None, compare=False, repr=False)

    @property
    def q_error(self) -> float:
        """max(pred/obs, obs/pred), the standard cost-model error metric;
        robust to the heavy-tailed cost scale."""
        pred = max(float(self.predicted_cost), 1e-9)
        obs = max(float(self.observed_cost), 1e-9)
        return max(pred / obs, obs / pred)

    @property
    def relative_error(self) -> float:
        obs = max(float(self.observed_cost), 1e-9)
        return abs(float(self.predicted_cost) - obs) / obs

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "predicted_cost": float(self.predicted_cost),
            "observed_cost": float(self.observed_cost),
            "env_features": list(self.env_features) if self.env_features else None,
            "day": int(self.day),
            "model_version": int(self.model_version),
            "n_nodes": int(self.n_nodes),
        }


class FeedbackLog:
    """Bounded append-only buffer of :class:`FeedbackRecord`."""

    def __init__(self, capacity: int = 4096, *, path: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"feedback capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._records: deque[FeedbackRecord] = deque(maxlen=capacity)
        self.appended = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def record(
        self,
        plan,
        predicted_cost: float,
        observed_cost: float,
        *,
        env_features: tuple[float, float, float, float] | None = None,
        day: int = 0,
        model_version: int = 0,
    ) -> FeedbackRecord:
        """Append one executed-plan outcome."""
        rec = FeedbackRecord(
            fingerprint=plan_digest(plan),
            predicted_cost=float(predicted_cost),
            observed_cost=float(observed_cost),
            env_features=tuple(float(v) for v in env_features)
            if env_features is not None
            else None,
            day=day,
            model_version=model_version,
            n_nodes=plan.n_nodes,
            plan=plan,
        )
        return self.append(rec)

    def append(self, rec: FeedbackRecord) -> FeedbackRecord:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(rec)
        self.appended += 1
        if self.path is not None:
            with self.path.open("a") as fh:
                fh.write(json.dumps(rec.as_dict()) + "\n")
        return rec

    def records(self) -> list[FeedbackRecord]:
        return list(self._records)

    def recent(self, n: int) -> list[FeedbackRecord]:
        if n <= 0:
            return []
        return list(self._records)[-n:]

    # -- canary split --------------------------------------------------------

    def held_out(self, fraction: float = 0.25, *, min_records: int = 1) -> list[FeedbackRecord]:
        """A deterministic held-out slice for canary shadow evaluation.

        Records are assigned by fingerprint digest bucket, so every
        occurrence of a recurring plan lands on the same side of the split
        regardless of arrival order (no leakage of a recurring query
        between the slices).  If the digest buckets leave fewer than
        ``min_records``, fall back to the most recent ``fraction`` of the
        log by position.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"holdout fraction must be in (0, 1), got {fraction}")
        records = list(self._records)
        cut = int(fraction * 10_000)
        held = [r for r in records if int(r.fingerprint[:8], 16) % 10_000 < cut]
        if len(held) < min_records:
            tail = max(min_records, int(np.ceil(fraction * len(records))))
            held = records[-tail:]
        return held

    def scoreable(self, records: list[FeedbackRecord] | None = None) -> list[FeedbackRecord]:
        """The subset whose plan object is still attached (re-scorable)."""
        pool = self.records() if records is None else records
        return [r for r in pool if r.plan is not None]

    def hottest_plans(
        self,
        n: int,
        *,
        default_env: tuple[float, float, float, float] | None = None,
    ) -> list[tuple[object, tuple[float, float, float, float] | None]]:
        """The ``n`` most frequently executed plan shapes still holding a
        plan object, hottest first, as ``(plan, env_features)`` pairs ready
        for :meth:`CostInferenceService.warm_caches` — the post-swap warming
        pass scores these so a promote's first requests for recurring plans
        are cache hits.

        Frequency counts every record of a fingerprint (including reloaded
        ones without plans); the representative plan and environment come
        from the fingerprint's most recent in-memory record, with
        ``default_env`` filling in when that record carried no environment.
        """
        if n <= 0:
            return []
        counts: dict[str, int] = {}
        latest: dict[str, tuple[int, FeedbackRecord]] = {}
        for i, rec in enumerate(self._records):
            counts[rec.fingerprint] = counts.get(rec.fingerprint, 0) + 1
            if rec.plan is not None:
                latest[rec.fingerprint] = (i, rec)
        ranked = sorted(latest, key=lambda fp: (-counts[fp], -latest[fp][0]))
        out = []
        for fp in ranked[:n]:
            rec = latest[fp][1]
            env = rec.env_features if rec.env_features is not None else default_env
            out.append((rec.plan, env))
        return out

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path, *, capacity: int = 4096) -> "FeedbackLog":
        """Replay a persisted JSONL log into a fresh (bounded) buffer."""
        log = cls(capacity)
        path = Path(path)
        if not path.exists():
            return log
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                env = raw.get("env_features")
                log.append(
                    FeedbackRecord(
                        fingerprint=raw["fingerprint"],
                        predicted_cost=raw["predicted_cost"],
                        observed_cost=raw["observed_cost"],
                        env_features=tuple(env) if env else None,
                        day=raw.get("day", 0),
                        model_version=raw.get("model_version", 0),
                        n_nodes=raw.get("n_nodes", 0),
                    )
                )
        # Resume appending to the same file (set only after replay so the
        # replay itself is not re-written).
        log.path = path
        return log
