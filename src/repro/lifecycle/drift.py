"""Drift detection over the feedback log: when must the model retrain?

A served cost model degrades for two distinct reasons, and the monitor
watches both:

* **prediction drift** — the workload's plan/cost relationship moved (new
  templates, changed data volumes), visible as rising q-error of recent
  outcomes against the model's own predictions;
* **environment drift** — the cluster's load distribution moved away from
  what the representative environment e_r was fitted on (challenge C1),
  visible as a shift of the mean environment-feature vector even while
  per-plan predictions still rank correctly.

Statistics are *rolling*: the most recent ``window`` records are compared
against the remainder of the (bounded) log, so the baseline itself slowly
follows the workload and a one-off burst of noise ages out.  The monitor
only raises a signal — retraining, validation, and promotion are the
canary's job (:mod:`repro.lifecycle.canary`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lifecycle.feedback import FeedbackLog, FeedbackRecord

__all__ = ["DriftConfig", "DriftReport", "DriftMonitor"]


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds of the retrain signal (documented in docs/LIFECYCLE.md)."""

    #: Recent rolling window compared against the older remainder of the log.
    window: int = 64
    #: No signal is raised before this many outcomes exist (cold start).
    min_samples: int = 24
    #: Absolute alarm: mean q-error of the recent window.
    max_q_error: float = 3.0
    #: Relative alarm: recent mean q-error vs the baseline window's.
    degradation_ratio: float = 1.4
    #: Mean absolute shift of the 4 normalized environment-feature means.
    env_shift_threshold: float = 0.12


@dataclass
class DriftReport:
    """Outcome of one :meth:`DriftMonitor.assess` pass."""

    retrain: bool
    reasons: list[str] = field(default_factory=list)
    n_samples: int = 0
    recent_q_error: float = 0.0
    baseline_q_error: float = 0.0
    env_shift: float = 0.0

    def summary(self) -> str:
        state = "RETRAIN" if self.retrain else "ok"
        why = f" ({', '.join(self.reasons)})" if self.reasons else ""
        return (
            f"drift: {state}{why} — recent q-err {self.recent_q_error:.2f} "
            f"vs baseline {self.baseline_q_error:.2f}, env shift "
            f"{self.env_shift:.3f}, n={self.n_samples}"
        )


def _mean_q_error(records: list[FeedbackRecord]) -> float:
    if not records:
        return 0.0
    return float(np.mean([r.q_error for r in records]))


def _env_matrix(records: list[FeedbackRecord]) -> np.ndarray:
    rows = [r.env_features for r in records if r.env_features is not None]
    return np.array(rows, dtype=np.float64) if rows else np.zeros((0, 4))


class DriftMonitor:
    """Rolling prediction-error and environment-distribution statistics.

    Besides its own statistics, the monitor accepts *external* guardrail
    signals via :meth:`flag` — the serving gateway raises one whenever the
    incumbent's circuit breaker trips, because a model that errors or blows
    its latency budget online needs a retrain candidate regardless of what
    the feedback log's q-errors say.  Flags are consumed by the next
    :meth:`assess` and force ``retrain=True`` even below ``min_samples``.
    """

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        self._external_reasons: list[str] = []

    def flag(self, reason: str) -> None:
        """Queue an external retrain signal (e.g. ``circuit-breaker-trip``)
        for the next assessment; duplicate reasons collapse."""
        if reason not in self._external_reasons:
            self._external_reasons.append(reason)

    def assess(self, log: FeedbackLog) -> DriftReport:
        cfg = self.config
        records = log.records()
        report = DriftReport(retrain=False, n_samples=len(records))
        report.reasons.extend(self._external_reasons)
        self._external_reasons = []
        if len(records) < cfg.min_samples:
            report.retrain = bool(report.reasons)
            return report

        recent = records[-cfg.window :]
        baseline = records[: -cfg.window] if len(records) > cfg.window else []
        report.recent_q_error = _mean_q_error(recent)
        report.baseline_q_error = _mean_q_error(baseline) if baseline else report.recent_q_error

        if report.recent_q_error > cfg.max_q_error:
            report.reasons.append("q-error-absolute")
        if baseline and report.recent_q_error > cfg.degradation_ratio * report.baseline_q_error:
            report.reasons.append("q-error-degradation")

        recent_env = _env_matrix(recent)
        baseline_env = _env_matrix(baseline)
        if len(recent_env) and len(baseline_env):
            report.env_shift = float(
                np.mean(np.abs(recent_env.mean(axis=0) - baseline_env.mean(axis=0)))
            )
            if report.env_shift > cfg.env_shift_threshold:
                report.reasons.append("environment-shift")

        report.retrain = bool(report.reasons)
        return report
