"""Canary-gated rollout: shadow-evaluate a candidate before it may serve.

A freshly trained candidate never replaces the incumbent directly.  The
controller re-scores a held-out slice of the feedback log — real executed
plans with observed costs — under both models (*shadow* evaluation: fresh,
side-effect-free inference services, so no shadow traffic pollutes the
live serving caches or stats), and promotes only when the candidate's
held-out error is no worse than the incumbent's within a configurable
regression budget.  On promotion the candidate is registered, made
current, and hot-swapped into the live :class:`~repro.serving.service.
CostInferenceService` (bumping ``weights_version`` so both serving-cache
tiers invalidate).  On gate failure the incumbent keeps serving unchanged
— and when there is no incumbent at all, the decision is to keep the
warehouse's default cost model (the native optimizer) in charge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lifecycle.feedback import FeedbackLog, FeedbackRecord

__all__ = ["CanaryConfig", "CanaryReport", "CanaryController", "shadow_errors"]


@dataclass(frozen=True)
class CanaryConfig:
    """The regression gate (documented in docs/LIFECYCLE.md)."""

    #: Fraction of the feedback log held out for shadow evaluation.
    holdout_fraction: float = 0.25
    #: Below this many scoreable held-out outcomes the gate cannot decide;
    #: the decision is ``insufficient-data`` (the incumbent keeps serving).
    min_holdout: int = 8
    #: The candidate's mean held-out q-error may exceed the incumbent's by
    #: at most this relative margin.
    max_regression: float = 0.02


@dataclass
class CanaryReport:
    """Outcome of one candidate evaluation."""

    decision: str  # "promote" | "reject" | "insufficient-data" | "bootstrap"
    candidate_error: float = 0.0
    incumbent_error: float = 0.0
    n_holdout: int = 0

    @property
    def passed(self) -> bool:
        return self.decision in ("promote", "bootstrap")

    def summary(self) -> str:
        return (
            f"canary: {self.decision} — candidate q-err {self.candidate_error:.3f} "
            f"vs incumbent {self.incumbent_error:.3f} on {self.n_holdout} held-out"
        )


def shadow_errors(predictor, records: list[FeedbackRecord]) -> np.ndarray:
    """Per-record q-error of ``predictor`` on re-scorable feedback records.

    Records are grouped by environment override so each group scores as one
    batched request through a fresh inference service.
    """
    from repro.serving.service import CostInferenceService

    service = CostInferenceService(predictor, enable_prediction_cache=False)
    groups: dict[tuple | None, list[int]] = {}
    for i, rec in enumerate(records):
        groups.setdefault(rec.env_features, []).append(i)
    errors = np.zeros(len(records))
    for env, members in groups.items():
        plans = [records[i].plan for i in members]
        predicted = service.predict(plans, env_features=env)
        for i, pred in zip(members, predicted):
            observed = max(records[i].observed_cost, 1e-9)
            pred = max(float(pred), 1e-9)
            errors[i] = max(pred / observed, observed / pred)
    return errors


class CanaryController:
    """Decides whether a candidate model may replace the incumbent."""

    def __init__(self, config: CanaryConfig | None = None) -> None:
        self.config = config or CanaryConfig()

    def evaluate(
        self,
        candidate,
        incumbent,
        feedback: FeedbackLog,
    ) -> CanaryReport:
        """Shadow-evaluate ``candidate`` against ``incumbent`` on the held-out
        slice of ``feedback``.  Pure decision — no registry or serving side
        effects (:class:`~repro.lifecycle.manager.ModelLifecycle` acts on it).
        """
        if incumbent is None:
            # Cold start: nothing to compare against.  The caller decides
            # between bootstrapping and staying on the native cost model.
            return CanaryReport(decision="bootstrap")
        cfg = self.config
        holdout = feedback.scoreable(
            feedback.held_out(cfg.holdout_fraction, min_records=cfg.min_holdout)
        )
        if len(holdout) < cfg.min_holdout:
            return CanaryReport(decision="insufficient-data", n_holdout=len(holdout))
        candidate_err = float(np.mean(shadow_errors(candidate, holdout)))
        incumbent_err = float(np.mean(shadow_errors(incumbent, holdout)))
        passed = candidate_err <= incumbent_err * (1.0 + cfg.max_regression)
        return CanaryReport(
            decision="promote" if passed else "reject",
            candidate_error=candidate_err,
            incumbent_error=incumbent_err,
            n_holdout=len(holdout),
        )
