"""Versioned model registry: atomic checkpoints and a single ``current`` pointer.

LOAM's deployment claim (challenges C3/C4) is that models are trained
strictly offline and reach serving only through guarded rollout.  The
registry is the ground truth of that rollout: every trained predictor is
written as an immutable, atomically-renamed ``.npz`` checkpoint (the format
of :mod:`repro.core.serialization`, whose manifest carries
``weights_version``, a training-data fingerprint, and registration metrics),
and exactly one version is *current* — the one the serving layer loads.

Layout on disk::

    <root>/
      registry.json     # index: entries, current pointer, promotion history
      v0001.npz         # immutable checkpoints
      v0002.npz
      ...

``registry.json`` and every checkpoint are written to a temporary sibling
and ``os.replace``-d into place, so a crash mid-write never corrupts the
registry and a concurrent reader always sees either the old or the new
state.  Promotion history enables exact :meth:`ModelRegistry.rollback`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.serialization import load_predictor, save_predictor
from repro.serving.fingerprint import plan_fingerprint

__all__ = ["ModelVersion", "ModelRegistry", "training_data_fingerprint"]

_MANIFEST_NAME = "registry.json"


def training_data_fingerprint(plans, costs) -> str:
    """A stable digest of a training set (plan structures + labels).

    Two fits from the same deduplicated history produce the same
    fingerprint, letting the lifecycle skip retraining on unchanged data
    and letting audits tie a served model back to what it saw.
    """
    digest = hashlib.sha256()
    for plan, cost in zip(plans, costs):
        digest.update(repr(plan_fingerprint(plan)).encode())
        digest.update(f"{float(cost):.6e}".encode())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class ModelVersion:
    """One registered checkpoint, as indexed in ``registry.json``."""

    version: int
    path: str
    weights_version: int
    training_fingerprint: str | None = None
    metrics: dict = field(default_factory=dict)
    promoted: bool = False

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "path": self.path,
            "weights_version": self.weights_version,
            "training_fingerprint": self.training_fingerprint,
            "metrics": self.metrics,
            "promoted": self.promoted,
        }


class ModelRegistry:
    """Versioned, crash-safe storage of trained predictors."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._state: dict = {
            "next_version": 1,
            "current": None,
            "history": [],  # previously-current versions, oldest first
            "entries": {},
        }
        manifest = self.root / _MANIFEST_NAME
        if manifest.exists():
            self._state = json.loads(manifest.read_text())

    # -- persistence ---------------------------------------------------------

    def _write_state(self) -> None:
        tmp = self.root / f".{_MANIFEST_NAME}.tmp"
        tmp.write_text(json.dumps(self._state, indent=2, sort_keys=True))
        os.replace(tmp, self.root / _MANIFEST_NAME)

    def _entry(self, version: int) -> ModelVersion:
        try:
            raw = self._state["entries"][str(version)]
        except KeyError:
            raise KeyError(f"no registered model version {version}") from None
        return ModelVersion(**raw)

    # -- registration --------------------------------------------------------

    def register(
        self,
        predictor,
        *,
        environment_features: tuple[float, float, float, float] | None = None,
        training_fingerprint: str | None = None,
        metrics: dict | None = None,
        promote: bool = False,
    ) -> ModelVersion:
        """Write ``predictor`` as the next immutable checkpoint.

        Registration never changes what is served; pass ``promote=True``
        (what the canary does after its gate passes) to also move the
        ``current`` pointer.
        """
        version = int(self._state["next_version"])
        final = self.root / f"v{version:04d}.npz"
        tmp = self.root / f".v{version:04d}.tmp.npz"
        save_predictor(
            predictor,
            tmp,
            environment_features=environment_features,
            training_fingerprint=training_fingerprint,
            metrics=metrics,
        )
        os.replace(tmp, final)
        entry = ModelVersion(
            version=version,
            path=final.name,
            weights_version=int(getattr(predictor, "weights_version", 0)),
            training_fingerprint=training_fingerprint,
            metrics=dict(metrics) if metrics else {},
            promoted=False,
        )
        self._state["entries"][str(version)] = entry.as_dict()
        self._state["next_version"] = version + 1
        self._write_state()
        if promote:
            return self.promote(version)
        return entry

    def promote(self, version: int) -> ModelVersion:
        """Move the ``current`` pointer to ``version`` (must be registered)."""
        entry = self._entry(version)
        current = self._state["current"]
        if current is not None and current != version:
            self._state["history"].append(current)
        self._state["current"] = version
        raw = dict(entry.as_dict(), promoted=True)
        self._state["entries"][str(version)] = raw
        self._write_state()
        return ModelVersion(**raw)

    def rollback(self) -> ModelVersion:
        """Restore the previously current version exactly; returns it."""
        if not self._state["history"]:
            raise RuntimeError("rollback with no promotion history")
        previous = self._state["history"].pop()
        self._state["current"] = previous
        self._write_state()
        return self._entry(previous)

    def prune(self, keep: int = 3) -> list[int]:
        """Delete all but the newest ``keep`` checkpoints, never touching the
        current version or anything still reachable through rollback history.
        Returns the pruned version numbers."""
        if keep < 1:
            raise ValueError(f"prune keep must be >= 1, got {keep}")
        protected = set(self._state["history"])
        if self._state["current"] is not None:
            protected.add(self._state["current"])
        versions = sorted(int(v) for v in self._state["entries"])
        protected.update(versions[-keep:])
        pruned = []
        for version in versions:
            if version in protected:
                continue
            entry = self._entry(version)
            (self.root / entry.path).unlink(missing_ok=True)
            del self._state["entries"][str(version)]
            pruned.append(version)
        if pruned:
            self._write_state()
        return pruned

    # -- lookup --------------------------------------------------------------

    @property
    def current(self) -> ModelVersion | None:
        version = self._state["current"]
        return self._entry(version) if version is not None else None

    def versions(self) -> list[ModelVersion]:
        return [self._entry(int(v)) for v in sorted(self._state["entries"], key=int)]

    def load(self, version: int | None = None):
        """Materialize a registered predictor (default: the current one).

        Returns ``(predictor, environment_features)`` exactly as
        :func:`repro.core.serialization.load_predictor` does.
        """
        entry = self.current if version is None else self._entry(version)
        if entry is None:
            raise RuntimeError("registry has no current model")
        return load_predictor(self.root / entry.path)
