"""The lifecycle manager: one object operating the full guarded loop.

Wires the four components into the continuous cycle the paper's deployment
story requires (train offline → register → serve → collect outcomes →
detect drift → canary-validate the retrain → promote or fall back)::

            ┌────────────────────────────────────────────────┐
            │                 ModelLifecycle                 │
            │                                                │
   train ──▶│ bootstrap/submit_candidate ──▶ CanaryController│
            │        │ promote                    │ reject   │
            │        ▼                            ▼          │
            │  ModelRegistry ──▶ CostInferenceService        │
            │  (current ptr)      (hot swap, version bump)   │
            │        ▲                            │          │
            │        │ retrain signal             │ serve    │
            │  DriftMonitor ◀── FeedbackLog ◀─── observe ────┼──▶ executor
            └────────────────────────────────────────────────┘

Before any model is promoted (``has_model`` is False) the warehouse's
default cost model keeps full control — callers simply keep using the
native optimizer's plan, which is also the fallback whenever a canary
rejects a candidate.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.lifecycle.canary import CanaryConfig, CanaryController, CanaryReport
from repro.lifecycle.drift import DriftConfig, DriftMonitor, DriftReport
from repro.lifecycle.feedback import FeedbackLog
from repro.lifecycle.registry import ModelRegistry, ModelVersion

__all__ = ["ModelLifecycle"]


class ModelLifecycle:
    """Versioned, feedback-driven, canary-gated model serving for one project."""

    def __init__(
        self,
        registry: ModelRegistry | str | Path | None = None,
        *,
        feedback: FeedbackLog | None = None,
        drift: DriftMonitor | DriftConfig | None = None,
        canary: CanaryController | CanaryConfig | None = None,
        service_kwargs: dict | None = None,
        warm_top_k: int = 32,
        recorder=None,
    ) -> None:
        self._tmpdir = None
        if registry is None:
            # Ephemeral registry (tests, per-task benchmark workers); the
            # directory lives as long as the lifecycle object.
            self._tmpdir = tempfile.TemporaryDirectory(prefix="loam-registry-")
            registry = ModelRegistry(self._tmpdir.name)
        elif not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.feedback = feedback or FeedbackLog()
        self.drift_monitor = drift if isinstance(drift, DriftMonitor) else DriftMonitor(drift)
        self.canary = canary if isinstance(canary, CanaryController) else CanaryController(canary)
        self._service_kwargs = service_kwargs or {}
        #: How many of the feedback log's hottest plans to re-score right
        #: after a hot swap (0 disables the post-promote warming pass).
        self.warm_top_k = warm_top_k
        self._predictor = None
        self._service = None
        #: Gateways fronting this lifecycle's service (see
        #: :meth:`serve_through_gateway`); notified on every hot swap so
        #: their circuit breakers reset for the new model version.
        self._gateways: list = []
        #: Serving fleets attached via :meth:`attach_fleet`: every
        #: promotion/rollback broadcasts the newly-current registry
        #: checkpoint to them as a staged, cache-warming rollout.
        self._fleets: list = []
        #: Optional :class:`repro.obs.FlightRecorder`: model-lifecycle
        #: transitions (bootstrap, canary verdict, promote, reject,
        #: rollback, drift-flagged) land in its ring as structured events,
        #: so an incident dump shows *what the fleet was serving and why*
        #: alongside the raw request events.
        self.recorder = recorder
        self.environment_features: tuple[float, float, float, float] | None = None
        if self.registry.current is not None:
            predictor, env = self.registry.load()
            self._attach(predictor, env)

    def _record(self, kind: str, name: str = "", **attrs) -> None:
        if self.recorder is not None:
            self.recorder.record(kind, name, **attrs)

    # -- serving -------------------------------------------------------------

    @property
    def has_model(self) -> bool:
        """False until a first model is promoted; the native optimizer's
        default cost model is in charge while this is False."""
        return self._predictor is not None

    @property
    def predictor(self):
        if self._predictor is None:
            raise RuntimeError("lifecycle has no promoted model yet")
        return self._predictor

    @property
    def service(self):
        """The live :class:`~repro.serving.service.CostInferenceService`."""
        if self._service is None:
            raise RuntimeError("lifecycle has no promoted model yet")
        return self._service

    @property
    def current_version(self) -> ModelVersion | None:
        return self.registry.current

    def _attach(self, predictor, environment_features) -> None:
        from repro.serving.service import CostInferenceService

        self.environment_features = environment_features
        warm = (
            self.feedback.hottest_plans(
                self.warm_top_k, default_env=environment_features
            )
            if self.warm_top_k > 0
            else None
        )
        if self._service is None:
            self._predictor = predictor
            self._service = CostInferenceService(predictor, **self._service_kwargs)
            for gateway in self._gateways:
                gateway.attach_service(self._service)
        else:
            # Hot swap, warming both cache tiers with the feedback log's
            # hottest recurring plans so the promote's first requests for
            # fleet-hot shapes are served warm instead of as a cold burst.
            self._service.swap_predictor(predictor, warm=warm or None)
            self._predictor = predictor
            for gateway in self._gateways:
                gateway.notify_swap()
        self._broadcast_to_fleets(warm)

    def _broadcast_to_fleets(self, warm) -> None:
        """Roll the registry's *current* checkpoint across every attached
        fleet (staged worker-by-worker, warming each shard's caches with
        the same hottest-plans list the in-process swap used)."""
        if not self._fleets:
            return
        current = self.registry.current
        if current is None:
            return
        path = self.registry.root / current.path
        for fleet in self._fleets:
            fleet.promote(path, warm=warm or None)

    def attach_fleet(self, fleet) -> None:
        """Subscribe a :class:`~repro.fleet.fleet.ServingFleet` to this
        lifecycle's rollouts: the current checkpoint ships immediately
        (when one exists), and every later promotion or rollback is
        broadcast as a staged fleet promote."""
        self._fleets.append(fleet)
        warm = (
            self.feedback.hottest_plans(
                self.warm_top_k, default_env=self.environment_features
            )
            if self.warm_top_k > 0
            else None
        )
        current = self.registry.current
        if current is not None:
            fleet.promote(self.registry.root / current.path, warm=warm or None)

    def serve_through_gateway(
        self,
        *,
        fallback=None,
        config=None,
        breaker=None,
        telemetry=None,
    ):
        """Build an :class:`~repro.gateway.gateway.OptimizerGateway` fronting
        this lifecycle's inference service — the entry point concurrent
        callers should use instead of touching :attr:`service` directly.

        The wiring closes the guardrail loop both ways:

        * every promotion/rollback hot swap resets the gateway's circuit
          breaker (a new model version starts with a clean record);
        * a breaker *trip* flags the drift monitor, so the next
          :meth:`check_drift` reports ``retrain=True`` with a
          ``circuit-breaker-trip`` reason even if the feedback log alone
          looks healthy — a misbehaving incumbent is a retrain signal, not
          just an availability event.

        Works before the first promotion too: the gateway answers from the
        native fallback (reason ``"no-model"``) until a model is attached.
        """
        from repro.gateway import OptimizerGateway

        def _flag_drift(gateway) -> None:
            version = self.current_version
            suffix = f":v{version.version}" if version is not None else ""
            self.drift_monitor.flag(f"circuit-breaker-trip{suffix}")

        gateway = OptimizerGateway(
            self._service,
            fallback=fallback,
            config=config,
            breaker=breaker,
            telemetry=telemetry,
            on_trip=_flag_drift,
        )
        self._gateways.append(gateway)
        return gateway

    # -- rollout -------------------------------------------------------------

    def bootstrap(
        self,
        predictor,
        *,
        environment_features: tuple[float, float, float, float] | None = None,
        training_fingerprint: str | None = None,
        metrics: dict | None = None,
    ) -> ModelVersion:
        """Promote the very first model without a canary (there is no
        incumbent to compare against; the validation gate that admitted it
        is the caller's responsibility, cf. ``LOAM.validate``)."""
        if self.has_model:
            raise RuntimeError("bootstrap with an incumbent; use submit_candidate")
        entry = self.registry.register(
            predictor,
            environment_features=environment_features,
            training_fingerprint=training_fingerprint,
            metrics=metrics,
            promote=True,
        )
        self._attach(predictor, environment_features)
        self._record(
            "lifecycle-bootstrap",
            "lifecycle",
            version=entry.version,
            weights_version=getattr(predictor, "weights_version", None),
        )
        return entry

    def submit_candidate(
        self,
        predictor,
        *,
        environment_features: tuple[float, float, float, float] | None = None,
        training_fingerprint: str | None = None,
        metrics: dict | None = None,
    ) -> tuple[CanaryReport, ModelVersion | None]:
        """Canary-evaluate ``predictor`` against the incumbent and promote it
        only if the regression gate passes.

        On promotion the candidate's ``weights_version`` is advanced past
        the incumbent's *before* the checkpoint is written, so the manifest
        matches the live counter and both serving-cache tiers invalidate on
        the hot swap.  On rejection the candidate is still registered
        (unpromoted) for audit, and the incumbent keeps serving unchanged.
        """
        if not self.has_model:
            report = CanaryReport(decision="bootstrap")
            entry = self.bootstrap(
                predictor,
                environment_features=environment_features,
                training_fingerprint=training_fingerprint,
                metrics=metrics,
            )
            return report, entry
        report = self.canary.evaluate(predictor, self._predictor, self.feedback)
        self._record(
            "canary-verdict",
            "lifecycle",
            decision=report.decision,
            candidate_q_error=report.candidate_error,
            incumbent_q_error=report.incumbent_error,
            n_holdout=report.n_holdout,
        )
        all_metrics = dict(metrics or {})
        all_metrics.update(
            {
                "canary_decision": report.decision,
                "canary_candidate_q_error": report.candidate_error,
                "canary_incumbent_q_error": report.incumbent_error,
                "canary_n_holdout": report.n_holdout,
            }
        )
        if report.decision == "promote":
            incumbent_version = getattr(self._predictor, "weights_version", 0)
            if getattr(predictor, "weights_version", 0) <= incumbent_version:
                predictor.weights_version = incumbent_version + 1
            entry = self.registry.register(
                predictor,
                environment_features=environment_features,
                training_fingerprint=training_fingerprint,
                metrics=all_metrics,
                promote=True,
            )
            self._attach(predictor, environment_features)
            self._record(
                "lifecycle-promote",
                "lifecycle",
                version=entry.version,
                weights_version=getattr(predictor, "weights_version", None),
            )
            return report, entry
        self.registry.register(
            predictor,
            environment_features=environment_features,
            training_fingerprint=training_fingerprint,
            metrics=all_metrics,
            promote=False,
        )
        self._record("lifecycle-reject", "lifecycle", decision=report.decision)
        return report, None

    def rollback(self) -> ModelVersion:
        """Restore the previously promoted version exactly and serve it."""
        entry = self.registry.rollback()
        predictor, env = self.registry.load(entry.version)
        self._attach(predictor, env)
        self._record("lifecycle-rollback", "lifecycle", version=entry.version)
        return entry

    # -- feedback + drift ----------------------------------------------------

    def observe(
        self,
        plan,
        observed_cost: float,
        *,
        predicted_cost: float | None = None,
        env_features: tuple[float, float, float, float] | None = None,
        day: int = 0,
    ):
        """Record one executed-plan outcome.  ``predicted_cost`` defaults to
        the live model's prediction under ``env_features`` (or the lifecycle's
        stored representative environment)."""
        env = env_features if env_features is not None else self.environment_features
        if predicted_cost is None:
            predicted_cost = float(self.service.predict([plan], env_features=env)[0])
        current = self.registry.current
        return self.feedback.record(
            plan,
            predicted_cost,
            observed_cost,
            env_features=env,
            day=day,
            model_version=current.version if current is not None else 0,
        )

    def check_drift(self) -> DriftReport:
        """Rolling drift statistics over the feedback log; ``retrain=True``
        is the signal to train a candidate and submit it."""
        report = self.drift_monitor.assess(self.feedback)
        if report.retrain:
            self._record(
                "drift-flagged",
                "lifecycle",
                reasons=list(report.reasons),
                recent_q_error=report.recent_q_error,
                baseline_q_error=report.baseline_q_error,
            )
        return report

    def watch(self, executor):
        """Attach the feedback loop to a warehouse executor: every completed
        execution is recorded as an outcome, predicted under the lifecycle's
        representative environment.  Executions before the first promotion
        are skipped (the native cost model is serving; there is no
        prediction to compare against).  Returns the observer callable so
        the caller can ``executor.remove_observer(...)`` it."""

        def _observer(record) -> None:
            if not self.has_model:
                return
            self.observe(record.plan, record.cpu_cost, day=record.day)

        executor.add_observer(_observer)
        return _observer
