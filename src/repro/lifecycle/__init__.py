"""Model lifecycle subsystem: versioned registry, outcome feedback, drift
detection, and canary-gated hot swap.

The paper's deployment claim (C3/C4) is that models train strictly offline
and reach serving only through guarded rollout with fallback to the default
optimizer.  This package closes that loop — see docs/LIFECYCLE.md for the
registry layout, feedback schema, drift thresholds, and canary gate.
"""

from repro.lifecycle.canary import CanaryConfig, CanaryController, CanaryReport, shadow_errors
from repro.lifecycle.drift import DriftConfig, DriftMonitor, DriftReport
from repro.lifecycle.feedback import FeedbackLog, FeedbackRecord, plan_digest
from repro.lifecycle.manager import ModelLifecycle
from repro.lifecycle.registry import ModelRegistry, ModelVersion, training_data_fingerprint

__all__ = [
    "CanaryConfig",
    "CanaryController",
    "CanaryReport",
    "DriftConfig",
    "DriftMonitor",
    "DriftReport",
    "FeedbackLog",
    "FeedbackRecord",
    "ModelLifecycle",
    "ModelRegistry",
    "ModelVersion",
    "plan_digest",
    "shadow_errors",
    "training_data_fingerprint",
]
