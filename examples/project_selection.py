"""Fleet-scale project selection: Filter rules + learned Ranker (Section 6).

Generates a heterogeneous fleet of projects, applies the rule-based Filter
(R1-R3) to exclude projects with training challenges, trains the Ranker on
a handful of measured projects, and ranks the remainder by estimated
improvement space D(M_d).

Run:  python examples/project_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.core.deviance import DevianceEstimator
from repro.core.explorer import PlanExplorer
from repro.core.selector import FilterConfig, ProjectFilter, ProjectRanker
from repro.evaluation.reporting import format_table
from repro.warehouse.workload import generate_project, profile_population


def improvement_spaces(workload, n_queries=6, n_samples=5):
    """Exact per-query D(M_d) via repeated flighting executions (App. E.1)."""
    explorer = PlanExplorer(workload.optimizer)
    flighting = workload.flighting(seed_key="selection")
    estimator = DevianceEstimator(n_samples=n_samples, n_grid=768)
    triples = []
    for _ in range(n_queries):
        query = workload.sample_query(14)
        plans = explorer.candidates(query, top_k=4)
        if len(plans) < 2:
            continue
        samples = [flighting.sample_costs(p, n_samples) for p in plans]
        report = estimator.report_from_samples(samples)
        d_index = next(i for i, p in enumerate(plans) if p.is_default)
        triples.append((plans[d_index], samples[d_index].mean(), report.improvement_space(d_index)))
    return triples


def main() -> None:
    print("Generating a 12-project fleet...")
    fleet = [generate_project(p) for p in profile_population(12, seed=5)]
    for workload in fleet:
        # Start mid-horizon so temporal tables are live; the cap keeps the
        # example fast while sub-cap project volumes still vary.
        workload.simulate_history(4, start_day=12, max_queries_per_day=100)

    # Stage 1: rule-based Filter (thresholds scaled to simulated volumes).
    project_filter = ProjectFilter(FilterConfig.scaled(volume_scale=0.02))
    survivors = []
    rows = []
    for workload in fleet:
        decision = project_filter.evaluate(
            workload.repository.records, workload.catalog, horizon_day=40
        )
        rows.append([
            workload.profile.name,
            f"{decision.n_query:.0f}",
            f"{decision.query_inc_ratio:.2f}",
            f"{decision.stable_table_ratio:.2f}",
            "PASS" if decision.passed else ",".join(decision.failed_rules),
        ])
        if decision.passed:
            survivors.append(workload)
    print(format_table(
        ["project", "n_query/day", "inc_ratio", "stable_ratio", "decision"],
        rows,
        title="Stage 1 - rule-based Filter (R1-R3)",
    ))
    print(f"{len(survivors)}/{len(fleet)} projects pass the filter\n")

    # Stage 2: learned Ranker, trained on the first survivors' measurements.
    train, test = survivors[: max(2, len(survivors) // 2)], survivors[max(2, len(survivors) // 2):]
    plans, catalogs, costs, spaces = [], [], [], []
    truth = {}
    print(f"Measuring improvement space on {len(train)} training projects...")
    for workload in train:
        for plan, cost, space in improvement_spaces(workload):
            plans.append(plan)
            catalogs.append(workload.catalog)
            costs.append(cost)
            spaces.append(space)
    ranker = ProjectRanker(n_estimators=60, max_depth=3)
    ranker.fit(plans, catalogs, costs, spaces)

    print(f"Ranking {len(test)} unseen projects by estimated D(M_d)...")
    scores = {}
    for workload in test:
        triples = improvement_spaces(workload, n_queries=4)
        truth[workload.profile.name] = float(np.mean([s for _, _, s in triples])) if triples else 0.0
        scores[workload.profile.name] = ranker.score_project(
            [p for p, _, _ in triples],
            workload.catalog,
            [c for _, c, _ in triples],
        ) if triples else 0.0
    ranking = ranker.rank_projects(scores)
    rows = [
        [name, f"{scores[name]:.3f}", f"{truth[name]:.3f}"] for name in ranking
    ]
    print(format_table(
        ["project (ranked)", "estimated D(Md)", "measured D(Md)"],
        rows,
        title="Stage 2 - learned Ranker output (deploy LOAM on the top-N)",
    ))


if __name__ == "__main__":
    main()
