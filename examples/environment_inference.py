"""Theorem 1 in action: plan selection under unobservable environments.

Builds a candidate set for one query, fits log-normal cost distributions
from repeated flighting executions (Appendix E.1), and compares selection
rules:

* the oracle M_o (foresees the environment; deviance 0 by definition);
* the best-achievable M_b (minimum *expected* cost — Theorem 1's bound);
* the representative-environment rule M_r that LOAM deploys;
* the native optimizer M_d (always the default plan).

Run:  python examples/environment_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.core.deviance import DevianceEstimator
from repro.core.explorer import PlanExplorer
from repro.evaluation.reporting import format_table
from repro.warehouse.workload import ProjectProfile, generate_project


def main() -> None:
    profile = ProjectProfile(
        name="thm1",
        seed=21,
        n_tables=12,
        n_templates=10,
        stats_availability=0.1,
        max_join_tables=5,
        row_scale=5e5,
        n_machines=60,
    )
    workload = generate_project(profile)
    explorer = PlanExplorer(workload.optimizer)
    flighting = workload.flighting(seed_key="thm1")
    estimator = DevianceEstimator(n_samples=12)

    # Find a query with a genuinely diverse candidate set.
    for attempt in range(20):
        query = workload.sample_query(0)
        plans = explorer.candidates(query, top_k=5)
        if len(plans) >= 4:
            break
    print(f"Query {query.query_id}: {len(plans)} candidate plans")

    print(f"Executing each candidate {estimator.n_samples} times in flighting...")
    samples = [flighting.sample_costs(plan, estimator.n_samples) for plan in plans]
    report = estimator.report_from_samples(samples)
    default_index = next(i for i, p in enumerate(plans) if p.is_default)

    rows = []
    for i, (plan, dist) in enumerate(zip(plans, report.distributions)):
        marker = []
        if i == default_index:
            marker.append("M_d")
        if i == report.best_achievable_index:
            marker.append("M_b")
        rows.append(
            [
                plan.provenance,
                f"{dist.mean:,.0f}",
                f"{dist.sigma:.2f}",
                f"{report.per_plan_deviance[i]:,.0f}",
                f"{report.relative_deviance_of(i):.1%}",
                ",".join(marker),
            ]
        )
    print(
        format_table(
            ["candidate", "E[cost]", "sigma(log)", "E[deviance]", "rel. deviance", "role"],
            rows,
            title="\nCandidate cost distributions and deviances (Appendix E.1)",
        )
    )
    print(f"\noracle expected cost E[min_i C_i] = {report.oracle_cost:,.0f}")
    print(
        f"Theorem 1 bound: every fixed selection has E[D] >= E[D(M_b)] = "
        f"{report.best_achievable_deviance:,.0f} "
        f"({report.best_achievable_relative_deviance:.1%} of oracle cost) > E[D(M_o)] = 0"
    )

    worst = int(np.argmax(report.per_plan_deviance))
    print(
        f"native default plan deviance: {report.per_plan_deviance[default_index]:,.0f} "
        f"({report.improvement_space(default_index):.1%} improvement space); "
        f"worst candidate: {plans[worst].provenance} "
        f"({report.relative_deviance_of(worst):.1%})"
    )


if __name__ == "__main__":
    main()
