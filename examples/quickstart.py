"""Quickstart: train LOAM on a simulated project and steer online queries.

Walks the full Figure-2 pipeline on a small project:

1. generate a project (catalog, templates, cluster) and simulate history;
2. train the adaptive cost predictor on historical default plans, with
   adversarial domain adaptation against unexecuted candidate plans;
3. validate against the native optimizer in the flighting environment;
4. serve an online query and inspect the steering decision.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.loam import LOAM, LOAMConfig
from repro.core.predictor import PredictorConfig
from repro.warehouse.workload import ProjectProfile, generate_project


def main() -> None:
    profile = ProjectProfile(
        name="quickstart",
        seed=7,
        n_tables=14,
        n_templates=12,
        queries_per_day=80.0,
        stats_availability=0.15,  # mostly-blind native optimizer (challenge C2)
        max_join_tables=5,
        row_scale=4e5,
        n_machines=60,
    )
    print(f"Generating project {profile.name!r} and simulating 10 days of history...")
    workload = generate_project(profile)
    workload.simulate_history(10, max_queries_per_day=80)
    print(f"  historical query repository: {len(workload.repository)} executions")

    config = LOAMConfig(
        max_training_queries=600,
        candidate_alignment_queries=40,
        top_k_candidates=5,
        flighting_runs=2,
        predictor=PredictorConfig(epochs=8, hidden_dims=(48, 48), embedding_dim=24),
    )
    loam = LOAM(workload, config)
    print("Training the adaptive cost predictor on days 0-8...")
    loam.train(first_day=0, last_day=8)
    report = loam.predictor.report
    assert report is not None
    print(
        f"  trained on {report.n_default_plans} default plans, aligned against "
        f"{report.n_candidate_plans} candidate plans in {report.train_seconds:.1f}s"
    )
    print(f"  representative environment e_r: {loam.environment.features()}")

    print("Validating on 10 held-out queries in the flighting environment...")
    test_queries = [workload.sample_query(9) for _ in range(10)]
    validation = loam.validate(test_queries)
    print(
        f"  native avg CPU cost {validation.native_average_cost:,.0f}  vs  "
        f"LOAM {validation.loam_average_cost:,.0f}  "
        f"(improvement {validation.improvement:+.1%})"
    )

    query = workload.sample_query(9)
    outcome = loam.optimize(query)
    print(f"\nSteering online query {query.query_id} ({query.n_tables} tables):")
    for plan, cost in zip(outcome.candidates, outcome.predicted_costs):
        marker = "  <- chosen" if plan is outcome.chosen_plan else ""
        print(f"  {plan.provenance:<32} predicted cost {cost:,.0f}{marker}")
    print(
        f"  plan generation {outcome.exploration_seconds * 1e3:.1f} ms, "
        f"inference {outcome.inference_seconds * 1e3:.1f} ms"
    )
    print("\nChosen plan:")
    print(outcome.chosen_plan.pretty())


if __name__ == "__main__":
    main()
