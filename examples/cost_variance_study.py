"""Cost-variance study: why environment-aware modeling matters (challenge C1).

Reproduces, on the simulator, the three empirical observations Sections 2.1
and 5 build on:

* recurring executions of an identical plan fluctuate substantially
  (Figure 1's inset: relative standard deviation up to ~50 %);
* execution cost responds roughly linearly to machine load (Figure 5);
* per-plan cost distributions are log-normal (Figure 15), validated with a
  Kolmogorov-Smirnov test.

Run:  python examples/cost_variance_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core.deviance import fit_lognormal, kolmogorov_smirnov_pvalue
from repro.evaluation.reporting import format_series, format_table
from repro.warehouse.cluster import EnvironmentSample
from repro.warehouse.workload import ProjectProfile, generate_project


def main() -> None:
    profile = ProjectProfile(
        name="variance",
        seed=11,
        n_tables=10,
        n_templates=8,
        stats_availability=0.3,
        row_scale=3e5,
        n_machines=60,
    )
    workload = generate_project(profile)
    flighting = workload.flighting(seed_key="study")

    # 1. Recurring-query cost fluctuation across templates.
    rows = []
    for template in workload.templates[:6]:
        query = template.instantiate(f"{template.template_id}-rq", np.random.default_rng(1))
        plan = workload.optimizer.optimize(query)
        costs = flighting.sample_costs(plan, 30)
        rsd = float(np.std(costs) / np.mean(costs))
        rows.append([template.template_id, f"{np.mean(costs):,.0f}", f"{rsd:.1%}"])
    print(format_table(["template", "mean CPU cost", "relative std dev"], rows,
                       title="Recurring-query cost fluctuation (Figure 1 inset)"))

    # 2. Cost vs machine load (controlled environments).
    query = workload.sample_query(0)
    plan = workload.optimizer.optimize(query)
    idles = np.linspace(0.1, 0.9, 5)
    costs_by_idle = [
        workload.executor.cost_under_environment(
            plan, EnvironmentSample(cpu_idle=i, io_wait=0.05, load5=5.0, mem_usage=0.5)
        )
        for i in idles
    ]
    print()
    print(format_series(
        "CPU_IDLE",
        [f"{i:.1f}" for i in idles],
        {"CPU cost": [f"{c:,.0f}" for c in costs_by_idle]},
        title="Cost vs CPU_IDLE (Figure 5): monotone, roughly linear",
    ))

    # 3. Log-normality of recurring costs (Figure 15).
    samples = flighting.sample_costs(plan, 60)
    fitted = fit_lognormal(samples)
    p_value = kolmogorov_smirnov_pvalue(samples, fitted)
    print(
        f"\nLog-normal fit of {len(samples)} executions: mu={fitted.mu:.2f} "
        f"sigma={fitted.sigma:.2f}; KS p-value = {p_value:.2f} "
        f"({'consistent with' if p_value > 0.05 else 'deviates from'} log-normal)"
    )


if __name__ == "__main__":
    main()
