"""The one-stop loop at fleet scale: Filter -> Rank -> Train -> Validate -> Deploy.

Runs one deployment round of the FleetManager over a small generated fleet,
showing each project's fate and the validation-gated deployments, then the
Ranker feedback loop growing its training pool.

Run:  python examples/fleet_deployment.py
"""

from __future__ import annotations

from repro.core.deployment import DeploymentConfig, FleetManager
from repro.core.loam import LOAMConfig
from repro.core.predictor import PredictorConfig
from repro.core.selector import FilterConfig
from repro.evaluation.reporting import format_table
from repro.warehouse.workload import generate_project, profile_population


def main() -> None:
    print("Generating an 8-project fleet with 4 days of history...")
    fleet = [generate_project(p) for p in profile_population(8, seed=41)]
    for workload in fleet:
        workload.simulate_history(4, start_day=10, max_queries_per_day=60)

    config = DeploymentConfig(
        top_n=2,
        min_validated_improvement=-0.05,  # tolerate small validation noise
        validation_queries=6,
        ranker_queries_per_project=4,
        deviance_samples=5,
        loam=LOAMConfig(
            max_training_queries=250,
            candidate_alignment_queries=20,
            flighting_runs=2,
            predictor=PredictorConfig(hidden_dims=(32, 24), embedding_dim=16, epochs=5),
        ),
        filter=FilterConfig(min_daily_queries=15.0),
    )
    manager = FleetManager(config)

    print("Seeding the Ranker from the first two projects...")
    n_examples = manager.seed_ranker(fleet[:2], sample_day=14)
    print(f"  ranker pool: {n_examples} measured (plan, D(Md)) examples")

    print("Running one deployment round over the fleet...\n")
    report = manager.run_round(fleet, sample_day=14, horizon_day=45)

    rows = [
        [o.name, f"{o.ranker_score:.3f}" if not o.filtered_out else "-", o.status]
        for o in report.outcomes
    ]
    print(format_table(["project", "ranker score", "status"], rows))
    print(
        f"\nfilter pass rate {report.pass_rate:.0%}; "
        f"deployed: {', '.join(report.deployed_projects) or 'none'}; "
        f"ranker pool grew to {len(manager._ranker_pool)} examples"
    )


if __name__ == "__main__":
    main()
